package harness_test

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/guest"
	"repro/internal/harness"
	"repro/internal/snapshot"
	"repro/internal/vm"
)

// taskFactory builds a SetupFactory over a linked image: every attempt gets
// a fresh tool and a fresh injector (both are stateful), with identical
// configuration — the supervisor's determinism contract.
func taskFactory(im *guest.Image, inject func() *faultinject.Injector) harness.SetupFactory {
	return func() harness.Setup {
		s := harness.Setup{
			Image: im, Tool: core.New(core.Options{}), Seed: 2, Threads: 4,
			RunOpts: vm.RunOpts{MaxBlocks: 2_000_000},
		}
		if inject != nil {
			s.Inject = inject()
		}
		return s
	}
}

func linkOrFatal(t *testing.T, seed int64) *guest.Image {
	t.Helper()
	im, err := randTaskProgram(seed).Link()
	if err != nil {
		t.Fatal(err)
	}
	return im
}

func TestSupervisorCleanRunPassesThrough(t *testing.T) {
	im := linkOrFatal(t, 11)
	sup, err := harness.Supervise(taskFactory(im, nil), harness.SuperviseOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if sup.Err != nil || sup.Attempts != 1 || sup.Taxonomy != "" || sup.FellBack {
		t.Fatalf("clean run: %+v err=%v", sup, sup.Err)
	}
	if sup.Checkpoints == 0 {
		t.Fatal("no checkpoints taken")
	}
}

// TestSupervisorFallbackMatchesUninjectedReport is the acceptance criterion:
// an injected compiled-engine panic under OnPanicFallback completes the run
// under the IR oracle, and the tool report is bit-identical to an uninjected
// run's.
func TestSupervisorFallbackMatchesUninjectedReport(t *testing.T) {
	im := linkOrFatal(t, 11)

	// Uninjected baseline.
	base, err := harness.Supervise(taskFactory(im, nil), harness.SuperviseOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if base.Err != nil {
		t.Fatalf("baseline failed: %v", base.Err)
	}
	baseReport := base.Inst.Core.Tool().(*core.Taskgrind).Reports.String()

	// The run dispatches a couple hundred blocks; a period of 40 guarantees
	// the injected defect fires mid-run regardless of the seed-derived phase.
	inject := func() *faultinject.Injector {
		in := faultinject.New(7)
		in.Enable(faultinject.EnginePanic, 40)
		return in
	}

	// Without fallback, the injected engine defect kills the run.
	dead, err := harness.Supervise(taskFactory(im, inject),
		harness.SuperviseOpts{OnPanic: harness.OnPanicReport})
	if err != nil {
		t.Fatal(err)
	}
	if dead.Taxonomy != harness.TaxPanic || dead.Crash == nil || dead.FellBack {
		t.Fatalf("report mode: taxonomy=%q crash=%v fellback=%v",
			dead.Taxonomy, dead.Crash, dead.FellBack)
	}
	if dead.Window[1] < dead.Window[0] {
		t.Fatalf("bad failure window %v", dead.Window)
	}

	// With fallback, the IR oracle completes the run.
	sup, err := harness.Supervise(taskFactory(im, inject),
		harness.SuperviseOpts{OnPanic: harness.OnPanicFallback})
	if err != nil {
		t.Fatal(err)
	}
	if !sup.FellBack || sup.Err != nil {
		t.Fatalf("fallback did not complete: fellback=%v err=%v", sup.FellBack, sup.Err)
	}
	if sup.Taxonomy != harness.TaxPanic {
		t.Fatalf("taxonomy = %q, want %q (why it fell back)", sup.Taxonomy, harness.TaxPanic)
	}
	got := sup.Inst.Core.Tool().(*core.Taskgrind).Reports.String()
	if got != baseReport {
		t.Fatalf("fallback report differs from uninjected run:\n--- fallback\n%s\n--- baseline\n%s", got, baseReport)
	}
	if sup.ExitCode != base.ExitCode || sup.GuestInstrs != base.GuestInstrs {
		t.Fatalf("fallback exit/instrs %d/%d, baseline %d/%d",
			sup.ExitCode, sup.GuestInstrs, base.ExitCode, base.GuestInstrs)
	}
}

// TestSupervisorVerifyCrashReproduces: a real guest crash must reproduce
// bit-identically under journal-verified replay, and the rendered report
// carries the replay token.
func TestSupervisorVerifyCrashReproduces(t *testing.T) {
	im, err := wildStoreProgram().Link()
	if err != nil {
		t.Fatal(err)
	}
	token := snapshot.Config{Prog: "wildstore", Tool: "taskgrind", Seed: 1, Threads: 2}.Token()
	factory := func() harness.Setup {
		return harness.Setup{Image: im, Tool: core.New(core.Options{}), Seed: 1, Threads: 2}
	}
	sup, err := harness.Supervise(factory, harness.SuperviseOpts{
		VerifyCrash: true, Token: token,
	})
	if err != nil {
		t.Fatal(err)
	}
	if sup.Taxonomy != harness.TaxFault || sup.Crash == nil {
		t.Fatalf("taxonomy=%q crash=%v", sup.Taxonomy, sup.Crash)
	}
	if !sup.Reproduced {
		t.Fatal("crash did not reproduce under verified replay")
	}
	if sup.Attempts != 2 {
		t.Fatalf("attempts = %d, want 2", sup.Attempts)
	}
	text := sup.Crash.Render(sup.Inst.M.Image)
	if !strings.Contains(text, "replay: "+token) {
		t.Fatalf("report missing replay token:\n%s", text)
	}
}

// TestBisectDivergence narrows an injected engine panic to a single-slice
// window at CkptEvery=1 cadence.
func TestBisectDivergence(t *testing.T) {
	im := linkOrFatal(t, 11)
	inject := func() *faultinject.Injector {
		in := faultinject.New(7)
		in.Enable(faultinject.EnginePanic, 40)
		return in
	}
	window, ok, err := harness.BisectDivergence(taskFactory(im, inject), harness.SuperviseOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("bisect found no divergence for an injected engine panic")
	}
	if window[1] <= window[0] {
		t.Fatalf("degenerate window %v", window)
	}

	// Two agreeing engines: no divergence to find.
	_, ok, err = harness.BisectDivergence(taskFactory(im, nil), harness.SuperviseOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("bisect reported divergence on agreeing engines")
	}
}

// TestSupervisedReplayDetectsForeignSchedule: verifying a journal against a
// run with a different seed reports a divergence instead of silently
// accepting it.
func TestSupervisedReplayDetectsForeignSchedule(t *testing.T) {
	im := linkOrFatal(t, 11)
	rec := snapshot.NewJournal()
	s := harness.Setup{Image: im, Tool: core.New(core.Options{}), Seed: 2, Threads: 4, Journal: rec}
	inst, err := harness.New(s)
	if err != nil {
		t.Fatal(err)
	}
	if res := inst.Run(); res.Err != nil {
		t.Fatal(res.Err)
	}

	v := rec.Verifier(false)
	s2 := s
	s2.Seed = 3
	s2.Tool = core.New(core.Options{})
	s2.Journal = v
	inst2, err := harness.New(s2)
	if err != nil {
		t.Fatal(err)
	}
	res := inst2.Run()
	if harness.Classify(res.Err) != harness.TaxDivergence {
		t.Fatalf("foreign schedule not flagged: %v", res.Err)
	}
}
