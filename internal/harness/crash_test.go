package harness_test

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/dbi"
	"repro/internal/faultinject"
	"repro/internal/gbuild"
	"repro/internal/guest"
	"repro/internal/harness"
	"repro/internal/omp"
	"repro/internal/vm"
)

// wildStoreProgram is a task program where one task stores through a wild
// pointer — the acceptance-criteria demo guest.
func wildStoreProgram() *gbuild.Builder {
	b := omp.NewProgram()

	f := b.Func("bad_task", "wild.c")
	f.Line(7)
	f.LdConst64(guest.R1, 0xdead0000)
	f.Ldi(guest.R2, 99)
	f.St(8, guest.R1, 0, guest.R2)
	f.Ret()

	f = b.Func("micro", "wild.c")
	f.Enter(0)
	fn := f
	omp.SingleNowait(f, func() {
		fn.Line(7)
		omp.EmitTask(fn, omp.TaskOpts{Fn: "bad_task"})
	})
	f.Leave()

	f = b.Func("main", "wild.c")
	f.Enter(0)
	f.Line(4)
	f.Ldi(guest.R1, 0)
	omp.Parallel(f, "micro", guest.R1, 2)
	f.Ldi(guest.R0, 0)
	f.Hlt(guest.R0)
	return b
}

// TestWildStoreCrashReport: a wild store must produce a symbolized
// Valgrind-style CrashReport through both engines, never a Go panic.
func TestWildStoreCrashReport(t *testing.T) {
	for _, engine := range []string{"direct", "instrumented"} {
		t.Run(engine, func(t *testing.T) {
			setup := harness.Setup{Seed: 1, Threads: 2}
			if engine == "instrumented" {
				setup.Tool = core.New(core.Options{})
			}
			res, inst, err := harness.BuildAndRun(wildStoreProgram(), setup)
			if err != nil {
				t.Fatal(err)
			}
			if res.Err == nil || res.Crash == nil {
				t.Fatalf("wild store not contained: err=%v crash=%v", res.Err, res.Crash)
			}
			if res.Crash.Kind != "invalid-access" {
				t.Fatalf("kind = %q", res.Crash.Kind)
			}
			text := res.Crash.Render(inst.M.Image)
			for _, want := range []string{
				"Invalid write of size 8 at 0xdead0000",
				"bad_task (wild.c:7)",
			} {
				if !strings.Contains(text, want) {
					t.Fatalf("report missing %q:\n%s", want, text)
				}
			}
			if inst.M.GuestFaults != 1 {
				t.Fatalf("GuestFaults = %d", inst.M.GuestFaults)
			}
		})
	}
}

// TestLenientMemCompatFlag: the compat flag restores the old behaviour — the
// same wild store silently allocates and the program exits cleanly.
func TestLenientMemCompatFlag(t *testing.T) {
	res, _, err := harness.BuildAndRun(wildStoreProgram(), harness.Setup{
		Seed: 1, Threads: 2, LenientMem: true,
	})
	if err != nil || res.Err != nil {
		t.Fatalf("lenient run failed: %v / %v", err, res.Err)
	}
	if res.ExitCode != 0 {
		t.Fatalf("exit = %d", res.ExitCode)
	}
}

// TestFaultInjectionGracefulDegradation is the acceptance-criteria table:
// every injection kind, at several intensities, under both the direct and the
// instrumented engine. No Go panic may escape harness.Run (a panic would fail
// the test by crashing it); runs either finish cleanly or produce a
// structured contained error.
func TestFaultInjectionGracefulDegradation(t *testing.T) {
	kinds := append([]faultinject.Kind(nil), faultinject.Kinds...)
	type variant struct{ engine, delivery string }
	// The instrumented leg runs the full engine × delivery matrix; the
	// direct (uninstrumented) leg has no tool and therefore no matrix.
	variants := []variant{
		{dbi.EngineIR, "per-event"},
		{dbi.EngineIR, "batched"},
		{dbi.EngineCompiled, "per-event"},
		{dbi.EngineCompiled, "batched"},
	}
	// outcome renders everything observable about a run: the structured
	// error, the symbolized crash report, and the tool's reports.
	outcome := func(res harness.Result, inst *harness.Instance) string {
		var sb strings.Builder
		if res.Err != nil {
			sb.WriteString(res.Err.Error())
		}
		sb.WriteString("|")
		if res.Crash != nil {
			sb.WriteString(res.Crash.Render(inst.M.Image))
		}
		sb.WriteString("|")
		if tg, ok := inst.Core.Tool().(*core.Taskgrind); ok {
			sb.WriteString(tg.Reports.String())
		}
		return sb.String()
	}
	for _, kind := range kinds {
		for _, every := range []uint64{1, 3} {
			t.Run(fmt.Sprintf("%s-every%d-direct", kind, every), func(t *testing.T) {
				in := faultinject.New(7)
				in.Enable(kind, every)
				res, _, err := harness.BuildAndRun(randTaskProgram(11), harness.Setup{
					Seed: 2, Threads: 4, Inject: in,
					// Budget so an injection-induced livelock turns into
					// a watchdog report instead of hanging the test.
					RunOpts: vm.RunOpts{MaxBlocks: 2_000_000},
				})
				if err != nil {
					t.Fatal(err)
				}
				if res.Err != nil && res.Crash == nil {
					t.Fatalf("unstructured failure: %v", res.Err)
				}
				if kind == faultinject.PoolAlloc && in.Seen(kind) == 0 {
					t.Fatal("pool injection never consulted")
				}
			})
			// Subtests run sequentially, so the map is complete before the
			// cross-variant comparisons below.
			sigs := map[variant]string{}
			for _, v := range variants {
				v := v
				t.Run(fmt.Sprintf("%s-every%d-%s-%s", kind, every, v.engine, v.delivery), func(t *testing.T) {
					in := faultinject.New(7)
					in.Enable(kind, every)
					deliv, ok := dbi.ParseDelivery(v.delivery)
					if !ok {
						t.Fatalf("bad delivery %q", v.delivery)
					}
					res, inst, err := harness.BuildAndRun(randTaskProgram(11), harness.Setup{
						Seed: 2, Threads: 4, Inject: in,
						Tool: core.New(core.Options{}), Engine: v.engine, Delivery: deliv,
						RunOpts: vm.RunOpts{MaxBlocks: 2_000_000},
					})
					if err != nil {
						t.Fatal(err)
					}
					if res.Err != nil && res.Crash == nil {
						t.Fatalf("unstructured failure: %v", res.Err)
					}
					if kind == faultinject.PoolAlloc && in.Seen(kind) == 0 {
						t.Fatal("pool injection never consulted")
					}
					// The engine-defect kind only exists on the compiled
					// engine's dispatch path; the IR oracle must never draw
					// from it, and the compiled engine must.
					if kind == faultinject.EnginePanic {
						if v.engine == dbi.EngineIR && in.Seen(kind) != 0 {
							t.Fatalf("IR engine consulted the panic stream %d times", in.Seen(kind))
						}
						if v.engine == dbi.EngineCompiled && in.Seen(kind) == 0 {
							t.Fatal("compiled engine never consulted the panic stream")
						}
					}
					sigs[v] = outcome(res, inst)
				})
			}
			// Reports are bit-identical across delivery modes for every
			// kind, and across engines for every kind except EnginePanic
			// (which by design only fires on the compiled engine).
			for _, eng := range []string{dbi.EngineIR, dbi.EngineCompiled} {
				a, b := sigs[variant{eng, "per-event"}], sigs[variant{eng, "batched"}]
				if a != "" && b != "" && a != b {
					t.Errorf("%s-every%d: %s outcome differs across delivery:\n--- per-event\n%s\n--- batched\n%s",
						kind, every, eng, a, b)
				}
			}
			if kind != faultinject.EnginePanic {
				a, b := sigs[variant{dbi.EngineIR, "batched"}], sigs[variant{dbi.EngineCompiled, "batched"}]
				if a != "" && b != "" && a != b {
					t.Errorf("%s-every%d: outcome differs across engines:\n--- ir\n%s\n--- compiled\n%s",
						kind, every, a, b)
				}
			}
		}
	}
}

// TestFaultInjectionDeterminism: same (program, seed, injection spec) gives
// identical outcomes.
func TestFaultInjectionDeterminism(t *testing.T) {
	run := func() (uint64, uint64, string) {
		in, err := faultinject.ParseSpec("pool=3,steal=2,sched=5", 13)
		if err != nil {
			t.Fatal(err)
		}
		res, inst, err := harness.BuildAndRun(randTaskProgram(5), harness.Setup{
			Seed: 3, Threads: 4, Inject: in,
			RunOpts: vm.RunOpts{MaxBlocks: 2_000_000},
		})
		if err != nil {
			t.Fatal(err)
		}
		errText := ""
		if res.Err != nil {
			errText = res.Err.Error()
		}
		return res.GuestInstrs, inst.M.ExitCode(), errText + "|" + in.Summary()
	}
	i1, e1, s1 := run()
	i2, e2, s2 := run()
	if i1 != i2 || e1 != e2 || s1 != s2 {
		t.Fatalf("injection run diverged: (%d,%d,%q) vs (%d,%d,%q)", i1, e1, s1, i2, e2, s2)
	}
}

// TestPoolExhaustionDropsTasksGracefully: with every pool allocation failing,
// regions and tasks are skipped NULL-style and the program still terminates.
func TestPoolExhaustionDropsTasksGracefully(t *testing.T) {
	in := faultinject.New(1)
	in.Enable(faultinject.PoolAlloc, 1)
	res, inst, err := harness.BuildAndRun(randTaskProgram(3), harness.Setup{
		Seed: 1, Threads: 4, Inject: in,
		RunOpts: vm.RunOpts{MaxBlocks: 2_000_000},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Err != nil {
		t.Fatalf("total pool failure not graceful: %v", res.Err)
	}
	if inst.OMP.AllocFailures == 0 {
		t.Fatal("no alloc failures recorded")
	}
	if inst.OMP.TasksCreated != 0 {
		t.Fatalf("tasks created despite failing allocator: %d", inst.OMP.TasksCreated)
	}
}

// TestToolFiniPanicContained: a tool whose analysis pass panics surfaces as a
// HostPanic result, not a process crash.
func TestToolFiniPanicContained(t *testing.T) {
	res, _, err := harness.BuildAndRun(randTaskProgram(1), harness.Setup{
		Seed: 1, Threads: 2, Tool: finiPanicTool{},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Err == nil || res.Crash == nil || res.Crash.Kind != "host-panic" {
		t.Fatalf("Fini panic not contained: err=%v crash=%+v", res.Err, res.Crash)
	}
}

type finiPanicTool struct{ dbi.NopTool }

func (finiPanicTool) Name() string     { return "fini-panic" }
func (finiPanicTool) Fini(c *dbi.Core) { panic("fini blew up") }
