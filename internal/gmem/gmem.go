// Package gmem implements the guest address space: a sparse, paged, little-
// endian byte-addressable memory. Pages are allocated on first touch so huge
// virtual layouts (stacks high, heap low) cost only what is used.
//
// Footprint reports the number of resident bytes; the evaluation harness uses
// it as the "memory usage" metric for guest runs (Table II / Fig 4).
package gmem

import (
	"encoding/binary"
	"fmt"
	"sort"
)

const (
	pageShift = 12
	// PageSize is the allocation granule (4 KiB, matching a host page).
	// Smaller granules matter for throughput: pages are zero-initialized on
	// first touch, so the granule bounds how much memclr + GC pressure a
	// short-lived guest pays per resident page.
	PageSize = 1 << pageShift
	pageMask = PageSize - 1
)

// Memory is a sparse guest address space. It is not internally synchronized:
// the DBI scheduler serializes guest execution (one thread at a time), so all
// accesses happen from the machine loop.
//
// The address space carries a region permission map (see perm.go). With
// Strict unset (the historical, lenient behaviour) the map is bookkeeping
// only: any access allocates pages on first touch. With Strict set, Load,
// Store and Copy — the guest-visible accessors — raise a *Fault (via panic,
// recovered by the VM at the block boundary) for bytes outside a mapped
// region or lacking the needed permission. WriteBytes, ReadBytes, Zero and
// ReadCString are host-privileged (loaders, debuggers) and never fault.
type Memory struct {
	pages map[uint64]*[PageSize]byte

	// lastPageIdx/lastPage cache the most recently touched page, bypassing
	// the page-map lookup for the common run of same-page accesses. Pages
	// are never deallocated, so the cache cannot go stale.
	lastPageIdx uint64
	lastPage    *[PageSize]byte

	// Strict enables permission checking on guest accessors.
	Strict bool

	// regions is the permission map: sorted by Lo, non-overlapping,
	// non-empty. lastRegion caches the index that satisfied the previous
	// check (single-threaded access only, like the rest of Memory).
	regions    []Region
	lastRegion int

	// Dirty tracking (see dirty.go). trackGen is the current generation (0
	// = tracking off); pageGen stamps each page with the generation of its
	// last write; dirtyIdx/dirtyGen cache the last stamped page so runs of
	// same-page stores skip the map write.
	trackGen uint64
	pageGen  map[uint64]uint64
	dirtyIdx uint64
	dirtyGen uint64
}

// New creates an empty address space (lenient: no regions, Strict off).
func New() *Memory {
	return &Memory{pages: make(map[uint64]*[PageSize]byte), lastRegion: -1}
}

// page returns the page containing addr, allocating it on first touch.
func (m *Memory) page(addr uint64) *[PageSize]byte {
	idx := addr >> pageShift
	if p := m.lastPage; p != nil && idx == m.lastPageIdx {
		return p
	}
	return m.pageSlow(idx)
}

// pageSlow is the page-cache miss path: map lookup, first-touch allocation,
// cache refill. Kept out of page so the hit path stays inlinable.
func (m *Memory) pageSlow(idx uint64) *[PageSize]byte {
	p := m.pages[idx]
	if p == nil {
		p = new([PageSize]byte)
		m.pages[idx] = p
	}
	m.lastPageIdx, m.lastPage = idx, p
	return p
}

// Footprint returns the number of resident bytes (touched pages times page
// size).
func (m *Memory) Footprint() uint64 {
	return uint64(len(m.pages)) * PageSize
}

// ResidentPages returns the number of touched pages.
func (m *Memory) ResidentPages() int { return len(m.pages) }

// Load reads a little-endian value of the given width (1, 2, 4 or 8 bytes),
// zero-extended to 64 bits. In strict mode an unmapped or read-protected
// access raises a *Fault.
func (m *Memory) Load(addr uint64, width uint8) uint64 {
	if m.Strict {
		m.check(addr, width, AccessRead)
	}
	off := addr & pageMask
	if off+uint64(width) <= PageSize {
		p := m.page(addr)
		switch width {
		case 1:
			return uint64(p[off])
		case 2:
			return uint64(binary.LittleEndian.Uint16(p[off:]))
		case 4:
			return uint64(binary.LittleEndian.Uint32(p[off:]))
		case 8:
			return binary.LittleEndian.Uint64(p[off:])
		}
		panic(fmt.Sprintf("gmem: bad load width %d", width))
	}
	// Page-straddling access: byte at a time.
	var v uint64
	for i := uint8(0); i < width; i++ {
		v |= uint64(m.page(addr + uint64(i))[(addr+uint64(i))&pageMask]) << (8 * i)
	}
	return v
}

// Store writes a little-endian value of the given width. In strict mode an
// unmapped or write-protected access raises a *Fault.
func (m *Memory) Store(addr uint64, width uint8, val uint64) {
	if m.Strict {
		m.check(addr, width, AccessWrite)
	}
	if m.trackGen != 0 {
		m.markDirty(addr >> pageShift)
	}
	off := addr & pageMask
	if off+uint64(width) <= PageSize {
		p := m.page(addr)
		switch width {
		case 1:
			p[off] = byte(val)
		case 2:
			binary.LittleEndian.PutUint16(p[off:], uint16(val))
		case 4:
			binary.LittleEndian.PutUint32(p[off:], uint32(val))
		case 8:
			binary.LittleEndian.PutUint64(p[off:], val)
		default:
			panic(fmt.Sprintf("gmem: bad store width %d", width))
		}
		return
	}
	if m.trackGen != 0 {
		// Page-straddling store: the pre-check marked the first page only.
		m.markDirty((addr + uint64(width) - 1) >> pageShift)
	}
	for i := uint8(0); i < width; i++ {
		m.page(addr + uint64(i))[(addr+uint64(i))&pageMask] = byte(val >> (8 * i))
	}
}

// WriteBytes copies a host byte slice into guest memory.
func (m *Memory) WriteBytes(addr uint64, b []byte) {
	for len(b) > 0 {
		p := m.page(addr)
		if m.trackGen != 0 {
			m.markDirty(addr >> pageShift)
		}
		off := addr & pageMask
		n := copy(p[off:], b)
		b = b[n:]
		addr += uint64(n)
	}
}

// ReadBytes copies guest memory into a fresh host byte slice.
func (m *Memory) ReadBytes(addr uint64, n int) []byte {
	out := make([]byte, n)
	for i := 0; i < n; {
		p := m.page(addr + uint64(i))
		off := (addr + uint64(i)) & pageMask
		c := copy(out[i:], p[off:])
		i += c
	}
	return out
}

// ReadCString reads a NUL-terminated guest string (capped at 64 KiB).
func (m *Memory) ReadCString(addr uint64) string {
	var out []byte
	for i := 0; i < 1<<16; i++ {
		b := byte(m.Load(addr+uint64(i), 1))
		if b == 0 {
			break
		}
		out = append(out, b)
	}
	return string(out)
}

// Zero clears n bytes starting at addr.
func (m *Memory) Zero(addr uint64, n uint64) {
	for i := uint64(0); i < n; {
		p := m.page(addr + i)
		if m.trackGen != 0 {
			m.markDirty((addr + i) >> pageShift)
		}
		off := (addr + i) & pageMask
		span := PageSize - off
		if span > n-i {
			span = n - i
		}
		for j := uint64(0); j < span; j++ {
			p[off+j] = 0
		}
		i += span
	}
}

// Hash returns a content digest of the address space: FNV-1a over every
// resident page's index and bytes, visiting pages in address order and
// skipping all-zero pages (an untouched page and a zeroed one digest the
// same, so the hash reflects content, not allocation history). Intended for
// differential testing: two runs with identical guest-visible memory hash
// equal.
func (m *Memory) Hash() uint64 {
	idxs := make([]uint64, 0, len(m.pages))
	for idx := range m.pages {
		idxs = append(idxs, idx)
	}
	sort.Slice(idxs, func(i, j int) bool { return idxs[i] < idxs[j] })

	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, idx := range idxs {
		p := m.pages[idx]
		zero := true
		for _, b := range p {
			if b != 0 {
				zero = false
				break
			}
		}
		if zero {
			continue
		}
		for shift := 0; shift < 64; shift += 8 {
			h = (h ^ uint64(byte(idx>>shift))) * prime64
		}
		for _, b := range p {
			h = (h ^ uint64(b)) * prime64
		}
	}
	return h
}

// Copy moves n bytes from src to dst (handles overlap like memmove).
func (m *Memory) Copy(dst, src uint64, n uint64) {
	if n == 0 || dst == src {
		return
	}
	if dst < src {
		for i := uint64(0); i < n; i++ {
			m.Store(dst+i, 1, m.Load(src+i, 1))
		}
	} else {
		for i := n; i > 0; i-- {
			m.Store(dst+i-1, 1, m.Load(src+i-1, 1))
		}
	}
}
