package gmem

import (
	"bytes"
	"testing"
)

func TestPermString(t *testing.T) {
	cases := map[Perm]string{PermNone: "--", PermR: "r-", PermW: "-w", PermRW: "rw"}
	for p, want := range cases {
		if got := p.String(); got != want {
			t.Errorf("Perm(%d).String() = %q, want %q", p, got, want)
		}
	}
}

func TestMapCoalesces(t *testing.T) {
	m := New()
	// Adjacent equal-permission maps collapse (the bump-allocator pattern).
	m.Map(0x1000, 0x100, PermRW)
	m.Map(0x1100, 0x100, PermRW)
	m.Map(0x1200, 0x100, PermRW)
	if got := m.Regions(); len(got) != 1 || got[0].Lo != 0x1000 || got[0].Hi != 0x1300 {
		t.Fatalf("regions = %+v, want one [0x1000,0x1300)", got)
	}
	// A differing permission splits.
	m.Map(0x1300, 0x100, PermR)
	if got := m.Regions(); len(got) != 2 {
		t.Fatalf("regions = %+v, want two", got)
	}
}

func TestMapReplacesAndSplits(t *testing.T) {
	m := New()
	m.Map(0x1000, 0x1000, PermRW)
	// Punch a read-only window in the middle: splits into three.
	m.Map(0x1400, 0x100, PermR)
	want := []Region{
		{Lo: 0x1000, Hi: 0x1400, Perm: PermRW},
		{Lo: 0x1400, Hi: 0x1500, Perm: PermR},
		{Lo: 0x1500, Hi: 0x2000, Perm: PermRW},
	}
	got := m.Regions()
	if len(got) != len(want) {
		t.Fatalf("regions = %+v, want %+v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("region[%d] = %+v, want %+v", i, got[i], want[i])
		}
	}
	// Restoring RW re-coalesces to one region.
	m.Protect(0x1400, 0x100, PermRW)
	if got := m.Regions(); len(got) != 1 {
		t.Fatalf("after re-protect: %+v, want one region", got)
	}
}

func TestZeroLengthRanges(t *testing.T) {
	m := New()
	m.Map(0x1000, 0, PermRW) // no-op
	if len(m.Regions()) != 0 {
		t.Fatal("zero-length Map created a region")
	}
	m.Map(0x1000, 0x100, PermRW)
	m.Unmap(0x1040, 0) // no-op
	if len(m.Regions()) != 1 {
		t.Fatal("zero-length Unmap changed the map")
	}
	if f := m.CheckRange(0x9999, 0, AccessRead); f != nil {
		t.Fatalf("zero-length check faulted: %v", f)
	}
}

func TestUnmap(t *testing.T) {
	m := New()
	m.Map(0x1000, 0x300, PermRW)
	m.Unmap(0x1100, 0x100)
	if p := m.PermAt(0x1100); p != PermNone {
		t.Fatalf("unmapped perm = %v", p)
	}
	if p := m.PermAt(0x10ff); p != PermRW {
		t.Fatalf("left half perm = %v", p)
	}
	if p := m.PermAt(0x1200); p != PermRW {
		t.Fatalf("right half perm = %v", p)
	}
}

func TestCheckRangeBoundaries(t *testing.T) {
	m := New()
	m.Map(0x1000, 0x100, PermRW)

	// Exactly-covered accesses at both edges pass.
	if f := m.CheckRange(0x1000, 8, AccessWrite); f != nil {
		t.Fatalf("low edge: %v", f)
	}
	if f := m.CheckRange(0x10f8, 8, AccessWrite); f != nil {
		t.Fatalf("high edge: %v", f)
	}
	// One byte past either edge faults, reporting the violating address.
	if f := m.CheckRange(0xfff, 2, AccessRead); f == nil || f.Addr != 0xfff {
		t.Fatalf("below low edge: %+v", f)
	}
	if f := m.CheckRange(0x10f9, 8, AccessRead); f == nil || f.Addr != 0x1100 {
		t.Fatalf("past high edge: %+v", f)
	}
	// A check spanning two coalescible regions passes after both are mapped.
	m.Map(0x1100, 0x100, PermRW)
	if f := m.CheckRange(0x10fc, 8, AccessWrite); f != nil {
		t.Fatalf("spanning: %v", f)
	}
}

func TestCheckRangePermissions(t *testing.T) {
	m := New()
	m.Map(0x1000, 0x100, PermR)
	if f := m.CheckRange(0x1000, 8, AccessRead); f != nil {
		t.Fatalf("read of r-: %v", f)
	}
	f := m.CheckRange(0x1000, 8, AccessWrite)
	if f == nil || f.Perm != PermR || f.Access != AccessWrite {
		t.Fatalf("write of r-: %+v", f)
	}
	if got := f.Error(); got == "" {
		t.Fatal("empty fault message")
	}
}

func TestCheckRangeAddressWrap(t *testing.T) {
	m := New()
	m.Map(^uint64(0)-0xff, 0x100, PermRW)
	// An access wrapping past the top of the address space always faults.
	if f := m.CheckRange(^uint64(0)-3, 8, AccessRead); f == nil {
		t.Fatal("wrapping access did not fault")
	}
}

func TestStrictLoadStorePanicsWithFault(t *testing.T) {
	m := New()
	m.Map(0x1000, 0x100, PermRW)
	m.Strict = true
	m.Store(0x1000, 8, 42)
	if got := m.Load(0x1000, 8); got != 42 {
		t.Fatalf("mapped roundtrip = %d", got)
	}
	func() {
		defer func() {
			r := recover()
			f, ok := r.(*Fault)
			if !ok {
				t.Fatalf("recovered %T (%v), want *Fault", r, r)
			}
			if f.Addr != 0xdead0000 || f.Access != AccessWrite || f.Width != 8 {
				t.Fatalf("fault = %+v", f)
			}
		}()
		m.Store(0xdead0000, 8, 1)
	}()
	// Lenient mode: the same store silently allocates.
	m.Strict = false
	m.Store(0xdead0000, 8, 1)
	if m.Load(0xdead0000, 8) != 1 {
		t.Fatal("lenient store lost")
	}
}

func TestStrictStraddlingRoundtrips(t *testing.T) {
	m := New()
	// Map a window straddling the page boundary and exercise Load/Store/Copy
	// across it with checking on.
	lo := uint64(PageSize) - 64
	m.Map(lo, 128, PermRW)
	m.Strict = true

	addr := uint64(PageSize) - 3
	m.Store(addr, 8, 0xAABBCCDDEEFF0011)
	if got := m.Load(addr, 8); got != 0xAABBCCDDEEFF0011 {
		t.Fatalf("straddle roundtrip = %#x", got)
	}
	// Copy across the boundary (byte-at-a-time, each byte checked).
	m.Copy(lo, addr, 8)
	want := m.ReadBytes(addr, 8)
	if got := m.ReadBytes(lo, 8); !bytes.Equal(got, want) {
		t.Fatalf("copy = %x, want %x", got, want)
	}
	// A straddling store that leaks past the window faults on the first
	// out-of-window byte.
	func() {
		defer func() {
			f, ok := recover().(*Fault)
			if !ok || f.Addr != lo+128 {
				t.Fatalf("fault = %+v", f)
			}
		}()
		m.Store(lo+128-4, 8, 1)
	}()
}

func TestHostAccessorsNeverFault(t *testing.T) {
	m := New()
	m.Strict = true // nothing mapped at all
	m.WriteBytes(0x5000, []byte{1, 2, 3})
	if got := m.ReadBytes(0x5000, 3); !bytes.Equal(got, []byte{1, 2, 3}) {
		t.Fatalf("host roundtrip = %v", got)
	}
	m.Zero(0x5000, 3)
}

func TestLastRegionCacheInvalidation(t *testing.T) {
	m := New()
	m.Map(0x1000, 0x100, PermRW)
	if f := m.CheckRange(0x1000, 8, AccessRead); f != nil {
		t.Fatalf("prime: %v", f)
	}
	// Unmapping must invalidate the fast-path cache.
	m.Unmap(0x1000, 0x100)
	if f := m.CheckRange(0x1000, 8, AccessRead); f == nil {
		t.Fatal("stale cache allowed an unmapped access")
	}
}
