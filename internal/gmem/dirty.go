package gmem

// Dirty-page generation tracking — the memory half of the checkpoint layer.
// When tracking is enabled, every guest-visible write stamps the touched page
// with the current generation; a checkpoint "cuts" the generation, harvesting
// exactly the pages written since the previous cut as a delta. Composing the
// boot snapshot with the deltas reconstructs memory at any cut, which is what
// lets a supervisor rewind a crashed run without copying the whole address
// space at every checkpoint.
//
// Tracking is strictly opt-in: with it off (the default) the write paths pay
// one predictable branch per access and allocate nothing.

import "sort"

// PageDump is one page's content at a cut. Data is PageSize bytes; an
// all-zero Data restores the page to its untouched state.
type PageDump struct {
	// Idx is the page index (address >> page shift).
	Idx  uint64
	Data []byte
}

// Addr returns the guest address of the page's first byte.
func (p PageDump) Addr() uint64 { return p.Idx << pageShift }

// EnableDirtyTracking turns on write tracking. Every currently resident page
// is marked dirty in the opening generation, so the first cut captures the
// loaded image (text, data) and anything touched before enabling.
func (m *Memory) EnableDirtyTracking() {
	if m.trackGen != 0 {
		return
	}
	m.trackGen = 1
	m.pageGen = make(map[uint64]uint64, len(m.pages))
	for idx := range m.pages {
		m.pageGen[idx] = m.trackGen
	}
	m.dirtyGen = 0 // invalidate the mark cache
}

// DirtyTracking reports whether write tracking is on.
func (m *Memory) DirtyTracking() bool { return m.trackGen != 0 }

// Gen returns the current dirty generation (0 when tracking is off).
func (m *Memory) Gen() uint64 { return m.trackGen }

// markDirty stamps a page with the current generation. The one-entry cache
// absorbs the common run of consecutive writes to the same page, so steady
// state costs a compare, not a map write.
func (m *Memory) markDirty(idx uint64) {
	if idx == m.dirtyIdx && m.trackGen == m.dirtyGen {
		return
	}
	m.pageGen[idx] = m.trackGen
	m.dirtyIdx, m.dirtyGen = idx, m.trackGen
}

// CutGeneration harvests every page written in the current generation,
// sorted by index, and opens a new generation: the delta between the
// previous cut (or EnableDirtyTracking) and now. Returns nil when tracking
// is off. Page contents are copied, so later guest writes cannot mutate a
// retained checkpoint.
func (m *Memory) CutGeneration() []PageDump {
	if m.trackGen == 0 {
		return nil
	}
	var out []PageDump
	for idx, gen := range m.pageGen {
		if gen != m.trackGen {
			continue
		}
		data := make([]byte, PageSize)
		if p := m.pages[idx]; p != nil {
			copy(data, p[:])
		}
		out = append(out, PageDump{Idx: idx, Data: data})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Idx < out[j].Idx })
	m.trackGen++
	m.dirtyGen = 0
	return out
}

// DirtyPageCount returns how many pages are dirty in the current generation
// (diagnostics and overhead accounting).
func (m *Memory) DirtyPageCount() int {
	n := 0
	for _, gen := range m.pageGen {
		if gen == m.trackGen {
			n++
		}
	}
	return n
}

// WritePages restores page contents from dumps (host-privileged, like
// WriteBytes). Restored pages are marked dirty when tracking is on: after a
// rewind they differ from whatever the abandoned timeline left behind, so
// the next cut must carry them.
func (m *Memory) WritePages(pages []PageDump) {
	for _, pd := range pages {
		p := m.pageSlow(pd.Idx)
		copy(p[:], pd.Data)
		if m.trackGen != 0 {
			m.markDirty(pd.Idx)
		}
	}
}

// AllPages snapshots every resident page (sorted by index) — the full-state
// form used for boot baselines and fidelity checks, independent of the
// generation protocol.
func (m *Memory) AllPages() []PageDump {
	out := make([]PageDump, 0, len(m.pages))
	for idx, p := range m.pages {
		data := make([]byte, PageSize)
		copy(data, p[:])
		out = append(out, PageDump{Idx: idx, Data: data})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Idx < out[j].Idx })
	return out
}

// SetRegions replaces the permission map wholesale (checkpoint restore).
// The slice must be sorted by Lo and non-overlapping, as produced by
// Regions.
func (m *Memory) SetRegions(regions []Region) {
	m.regions = append(m.regions[:0:0], regions...)
	m.lastRegion = -1
}
