package gmem

import "fmt"

// Perm is a region permission bitmask. The zero value means unmapped.
type Perm uint8

// Permission bits.
const (
	PermNone Perm = 0
	PermR    Perm = 1 << 0
	PermW    Perm = 1 << 1
	PermRW   Perm = PermR | PermW
)

// String renders the permission like a /proc/maps column.
func (p Perm) String() string {
	r, w := byte('-'), byte('-')
	if p&PermR != 0 {
		r = 'r'
	}
	if p&PermW != 0 {
		w = 'w'
	}
	return string([]byte{r, w})
}

// Access classifies a memory access for fault reports.
type Access uint8

// Access kinds.
const (
	AccessRead Access = iota
	AccessWrite
)

// String returns "read" or "write".
func (a Access) String() string {
	if a == AccessWrite {
		return "write"
	}
	return "read"
}

// Fault describes one access violation: an access that touched bytes outside
// every mapped region, or a region lacking the required permission. In strict
// mode the accessors panic with a *Fault; the VM recovers it at the basic-
// block boundary and converts it into a structured vm.GuestFault — the guest
// equivalent of SIGSEGV delivery.
type Fault struct {
	Addr   uint64
	Width  uint8
	Access Access
	// Perm is what was mapped at Addr (PermNone when unmapped).
	Perm Perm
}

// Error implements error.
func (f *Fault) Error() string {
	why := "unmapped"
	if f.Perm != PermNone {
		why = "protection " + f.Perm.String()
	}
	return fmt.Sprintf("gmem: invalid %s of size %d at 0x%x (%s)",
		f.Access, f.Width, f.Addr, why)
}

// Region is one mapped address range [Lo, Hi) with its permissions.
type Region struct {
	Lo, Hi uint64
	Perm   Perm
}

// Map grants perm over [addr, addr+n), replacing whatever the range held
// before. Zero-length maps are no-ops. Adjacent or overlapping regions with
// equal permissions coalesce, so per-allocation heap maps collapse into one
// region under a bump allocator.
func (m *Memory) Map(addr, n uint64, perm Perm) {
	if n == 0 {
		return
	}
	m.carve(addr, addr+n)
	// Insert, keeping the slice sorted by Lo.
	i := m.regionIndex(addr)
	for i < len(m.regions) && m.regions[i].Lo < addr {
		i++
	}
	m.regions = append(m.regions, Region{})
	copy(m.regions[i+1:], m.regions[i:])
	m.regions[i] = Region{Lo: addr, Hi: addr + n, Perm: perm}
	m.coalesce(i)
	m.lastRegion = -1
}

// Unmap revokes all permissions over [addr, addr+n).
func (m *Memory) Unmap(addr, n uint64) {
	if n == 0 {
		return
	}
	m.carve(addr, addr+n)
	m.lastRegion = -1
}

// Protect is Map under its POSIX name (mprotect semantics).
func (m *Memory) Protect(addr, n uint64, perm Perm) { m.Map(addr, n, perm) }

// carve removes [lo, hi) from every existing region, splitting regions that
// straddle a boundary.
func (m *Memory) carve(lo, hi uint64) {
	out := m.regions[:0]
	var add []Region
	for _, r := range m.regions {
		switch {
		case r.Hi <= lo || r.Lo >= hi:
			out = append(out, r)
		case r.Lo < lo && r.Hi > hi:
			// Straddles both ends: split in two.
			out = append(out, Region{Lo: r.Lo, Hi: lo, Perm: r.Perm})
			add = append(add, Region{Lo: hi, Hi: r.Hi, Perm: r.Perm})
		case r.Lo < lo:
			out = append(out, Region{Lo: r.Lo, Hi: lo, Perm: r.Perm})
		case r.Hi > hi:
			add = append(add, Region{Lo: hi, Hi: r.Hi, Perm: r.Perm})
		default:
			// Fully covered: dropped.
		}
	}
	out = append(out, add...)
	// add entries may land out of order relative to later regions; restore
	// the sort with a small insertion pass (add is at most one element).
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].Lo < out[j-1].Lo; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	m.regions = out
}

// coalesce merges region i with equal-permission neighbours.
func (m *Memory) coalesce(i int) {
	for i+1 < len(m.regions) &&
		m.regions[i].Hi == m.regions[i+1].Lo && m.regions[i].Perm == m.regions[i+1].Perm {
		m.regions[i].Hi = m.regions[i+1].Hi
		m.regions = append(m.regions[:i+1], m.regions[i+2:]...)
	}
	for i > 0 &&
		m.regions[i-1].Hi == m.regions[i].Lo && m.regions[i-1].Perm == m.regions[i].Perm {
		m.regions[i-1].Hi = m.regions[i].Hi
		m.regions = append(m.regions[:i], m.regions[i+1:]...)
		i--
	}
}

// regionIndex returns the index of the first region whose Hi is above addr
// (binary search).
func (m *Memory) regionIndex(addr uint64) int {
	lo, hi := 0, len(m.regions)
	for lo < hi {
		mid := (lo + hi) / 2
		if m.regions[mid].Hi <= addr {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// PermAt returns the permission mapped at addr (PermNone when unmapped).
func (m *Memory) PermAt(addr uint64) Perm {
	i := m.regionIndex(addr)
	if i < len(m.regions) && m.regions[i].Lo <= addr {
		return m.regions[i].Perm
	}
	return PermNone
}

// Regions returns a copy of the permission map, sorted by address.
func (m *Memory) Regions() []Region {
	return append([]Region(nil), m.regions...)
}

// need returns the permission bit an access requires.
func (a Access) need() Perm {
	if a == AccessWrite {
		return PermW
	}
	return PermR
}

// CheckRange verifies that every byte of [addr, addr+n) is mapped with the
// permission the access needs, returning a *Fault describing the first
// violating byte, or nil. It is a query: it never panics, regardless of
// strict mode.
func (m *Memory) CheckRange(addr, n uint64, acc Access) *Fault {
	if n == 0 {
		return nil
	}
	need := acc.need()
	width := uint8(8)
	if n < 8 {
		width = uint8(n)
	}
	end := addr + n
	if end < addr {
		// Address-space wrap: no region spans the top of the space.
		return &Fault{Addr: addr, Width: width, Access: acc, Perm: PermNone}
	}
	// Fast path: the last region that satisfied a check covers this access
	// too (the overwhelmingly common case: consecutive stack/heap accesses).
	if li := m.lastRegion; li >= 0 && li < len(m.regions) {
		if r := m.regions[li]; r.Lo <= addr && end <= r.Hi && r.Perm&need == need {
			return nil
		}
	}
	for a := addr; ; {
		i := m.regionIndex(a)
		if i >= len(m.regions) || m.regions[i].Lo > a {
			return &Fault{Addr: a, Width: width, Access: acc, Perm: PermNone}
		}
		r := m.regions[i]
		if r.Perm&need != need {
			return &Fault{Addr: a, Width: width, Access: acc, Perm: r.Perm}
		}
		if end <= r.Hi {
			m.lastRegion = i
			return nil
		}
		a = r.Hi
	}
}

// check raises a fault (panic with *Fault) for a violating guest access.
// Callers gate on m.Strict themselves so the lenient path pays no call.
func (m *Memory) check(addr uint64, width uint8, acc Access) {
	if f := m.CheckRange(addr, uint64(width), acc); f != nil {
		f.Width = width
		panic(f)
	}
}
