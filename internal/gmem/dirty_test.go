package gmem

import "testing"

func TestDirtyTrackingOffByDefault(t *testing.T) {
	m := New()
	m.Store(0x1000, 8, 42)
	if m.DirtyTracking() || m.Gen() != 0 {
		t.Fatal("tracking on without EnableDirtyTracking")
	}
	if pages := m.CutGeneration(); pages != nil {
		t.Fatalf("cut with tracking off returned %d pages", len(pages))
	}
}

func TestDirtyCutCapturesWrites(t *testing.T) {
	m := New()
	m.Store(0x1000, 8, 1) // resident before enabling
	m.EnableDirtyTracking()

	// First cut: the pre-enable resident page counts as dirty.
	pages := m.CutGeneration()
	if len(pages) != 1 || pages[0].Idx != 0x1000>>12 {
		t.Fatalf("boot cut = %+v", pages)
	}

	// Nothing written: empty delta.
	if pages := m.CutGeneration(); len(pages) != 0 {
		t.Fatalf("idle cut = %d pages", len(pages))
	}

	m.Store(0x5008, 4, 7)
	m.Store(0x5010, 8, 9)  // same page: one dump
	m.Store(0x20000, 1, 3) // second page
	pages = m.CutGeneration()
	if len(pages) != 2 {
		t.Fatalf("delta = %d pages, want 2", len(pages))
	}
	if pages[0].Idx != 0x5000>>12 || pages[1].Idx != 0x20000>>12 {
		t.Fatalf("delta pages = %d, %d", pages[0].Idx, pages[1].Idx)
	}
	if got := uint64(pages[0].Data[0x10]); got != 9 {
		t.Fatalf("dump content = %d", got)
	}
	// A load alone must not dirty anything.
	m.Load(0x5008, 4)
	if n := m.DirtyPageCount(); n != 0 {
		t.Fatalf("load dirtied %d pages", n)
	}
}

func TestDirtyStraddleMarksBothPages(t *testing.T) {
	m := New()
	m.EnableDirtyTracking()
	m.CutGeneration()
	m.Store(0x1FFC, 8, ^uint64(0)) // straddles pages 1 and 2
	pages := m.CutGeneration()
	if len(pages) != 2 {
		t.Fatalf("straddling store dirtied %d pages, want 2", len(pages))
	}
}

func TestDirtyHostWritersMark(t *testing.T) {
	m := New()
	m.EnableDirtyTracking()
	m.CutGeneration()
	m.WriteBytes(0x3000, []byte{1, 2, 3})
	m.Zero(0x7000, 16)
	m.Copy(0x9000, 0x3000, 3)
	pages := m.CutGeneration()
	if len(pages) != 3 {
		t.Fatalf("host writers dirtied %d pages, want 3", len(pages))
	}
}

func TestWritePagesRestoresContent(t *testing.T) {
	m := New()
	m.EnableDirtyTracking()
	m.Store(0x4000, 8, 0xdead)
	snap := m.CutGeneration()
	m.Store(0x4000, 8, 0xbeef)
	m.WritePages(snap)
	if got := m.Load(0x4000, 8); got != 0xdead {
		t.Fatalf("restored value = %#x", got)
	}
	// The restore itself must appear in the next cut (the rewound state
	// differs from the abandoned timeline).
	if pages := m.CutGeneration(); len(pages) != 1 {
		t.Fatalf("restore not re-dirtied: %d pages", len(pages))
	}
}

func TestAllPagesAndHashAgree(t *testing.T) {
	a, b := New(), New()
	a.Store(0x1000, 8, 77)
	a.Store(0x88000, 4, 5)
	b.WritePages(a.AllPages())
	if a.Hash() != b.Hash() {
		t.Fatal("AllPages transplant changed the content hash")
	}
}

func TestSetRegionsRoundTrip(t *testing.T) {
	m := New()
	m.Map(0x1000, 0x1000, PermR)
	m.Map(0x4000, 0x2000, PermRW)
	saved := m.Regions()
	m.Map(0x8000, 0x1000, PermRW)
	m.SetRegions(saved)
	got := m.Regions()
	if len(got) != len(saved) {
		t.Fatalf("regions = %+v, want %+v", got, saved)
	}
	for i := range got {
		if got[i] != saved[i] {
			t.Fatalf("region %d = %+v, want %+v", i, got[i], saved[i])
		}
	}
	if m.PermAt(0x8000) != PermNone {
		t.Fatal("restored map still has the later mapping")
	}
}
