package gmem

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestLoadStoreWidths(t *testing.T) {
	m := New()
	m.Store(0x1000, 8, 0x1122334455667788)
	if got := m.Load(0x1000, 8); got != 0x1122334455667788 {
		t.Fatalf("ld64 = %#x", got)
	}
	if got := m.Load(0x1000, 4); got != 0x55667788 {
		t.Fatalf("ld32 = %#x", got)
	}
	if got := m.Load(0x1004, 4); got != 0x11223344 {
		t.Fatalf("ld32 hi = %#x", got)
	}
	if got := m.Load(0x1000, 2); got != 0x7788 {
		t.Fatalf("ld16 = %#x", got)
	}
	if got := m.Load(0x1000, 1); got != 0x88 {
		t.Fatalf("ld8 = %#x", got)
	}
	m.Store(0x1002, 1, 0xAB)
	if got := m.Load(0x1000, 4); got != 0x55AB7788 {
		t.Fatalf("after byte store = %#x", got)
	}
}

func TestStoreTruncates(t *testing.T) {
	m := New()
	m.Store(0x10, 1, 0x1FF)
	if got := m.Load(0x10, 2); got != 0xFF {
		t.Fatalf("truncated store = %#x", got)
	}
}

func TestPageStraddle(t *testing.T) {
	m := New()
	addr := uint64(PageSize - 3)
	m.Store(addr, 8, 0xAABBCCDDEEFF0011)
	if got := m.Load(addr, 8); got != 0xAABBCCDDEEFF0011 {
		t.Fatalf("straddle = %#x", got)
	}
	if m.ResidentPages() != 2 {
		t.Fatalf("pages = %d", m.ResidentPages())
	}
}

func TestZeroValueReads(t *testing.T) {
	m := New()
	if m.Load(0xDEAD0000, 8) != 0 {
		t.Fatal("untouched memory not zero")
	}
}

func TestWriteReadBytes(t *testing.T) {
	m := New()
	data := bytes.Repeat([]byte{1, 2, 3, 4, 5}, 40000) // straddles pages
	m.WriteBytes(uint64(PageSize)-100, data)
	got := m.ReadBytes(uint64(PageSize)-100, len(data))
	if !bytes.Equal(got, data) {
		t.Fatal("round trip mismatch")
	}
}

func TestReadCString(t *testing.T) {
	m := New()
	m.WriteBytes(0x40, append([]byte("hello"), 0))
	if s := m.ReadCString(0x40); s != "hello" {
		t.Fatalf("cstring = %q", s)
	}
}

func TestZeroAndCopy(t *testing.T) {
	m := New()
	m.WriteBytes(0x100, []byte{1, 2, 3, 4, 5, 6, 7, 8})
	m.Zero(0x102, 3)
	want := []byte{1, 2, 0, 0, 0, 6, 7, 8}
	if got := m.ReadBytes(0x100, 8); !bytes.Equal(got, want) {
		t.Fatalf("after zero: %v", got)
	}
	// Overlapping copy forward and backward (memmove semantics).
	m.WriteBytes(0x200, []byte{1, 2, 3, 4, 5})
	m.Copy(0x202, 0x200, 3)
	if got := m.ReadBytes(0x200, 5); !bytes.Equal(got, []byte{1, 2, 1, 2, 3}) {
		t.Fatalf("overlap fwd: %v", got)
	}
	m.WriteBytes(0x300, []byte{1, 2, 3, 4, 5})
	m.Copy(0x300, 0x302, 3)
	if got := m.ReadBytes(0x300, 5); !bytes.Equal(got, []byte{3, 4, 5, 4, 5}) {
		t.Fatalf("overlap back: %v", got)
	}
}

func TestFootprint(t *testing.T) {
	m := New()
	if m.Footprint() != 0 {
		t.Fatal("fresh footprint nonzero")
	}
	m.Store(0, 1, 1)
	m.Store(10*PageSize, 1, 1)
	if m.Footprint() != 2*PageSize {
		t.Fatalf("footprint = %d", m.Footprint())
	}
}

// Property: a sequence of stores then a load returns the last store's bytes,
// checked against a simple map model.
func TestQuickMemoryVsModel(t *testing.T) {
	type op struct {
		Addr  uint32
		Width uint8
		Val   uint64
	}
	f := func(ops []op) bool {
		m := New()
		model := map[uint64]byte{}
		for _, o := range ops {
			w := []uint8{1, 2, 4, 8}[o.Width%4]
			addr := uint64(o.Addr)
			m.Store(addr, w, o.Val)
			for i := uint8(0); i < w; i++ {
				model[addr+uint64(i)] = byte(o.Val >> (8 * i))
			}
		}
		for a, b := range model {
			if byte(m.Load(a, 1)) != b {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
