// Package itree implements the interval trees Taskgrind attaches to every
// segment to record read and write accesses (paper §III-B, Fig. 3). Dense
// accesses accumulate compactly: inserting an interval merges it with any
// overlapping or adjacent intervals, so a segment sweeping an array ends up
// with a single node no matter how many accesses it made. All operations
// used by the analysis are O(log n) in the number of dense intervals.
//
// The tree is a treap (randomized BST) with deterministic priorities derived
// from the interval start, so identical access sequences build identical
// trees — preserving run-to-run reproducibility.
package itree

// Interval is a half-open byte range [Lo, Hi).
type Interval struct {
	Lo, Hi uint64
}

type node struct {
	iv          Interval
	prio        uint64
	left, right *node
	// maxHi is the subtree maximum of iv.Hi, for stabbing queries.
	maxHi uint64
}

// Tree is a set of disjoint, non-adjacent half-open intervals.
type Tree struct {
	root  *node
	count int
}

// New creates an empty tree.
func New() *Tree { return &Tree{} }

// Len returns the number of stored (merged) intervals.
func (t *Tree) Len() int { return t.count }

// Empty reports whether the tree holds no intervals.
func (t *Tree) Empty() bool { return t.root == nil }

// prio derives a deterministic treap priority from the interval start
// (splitmix64 finalizer).
func prio(lo uint64) uint64 {
	z := lo + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func upd(n *node) *node {
	if n == nil {
		return nil
	}
	n.maxHi = n.iv.Hi
	if n.left != nil && n.left.maxHi > n.maxHi {
		n.maxHi = n.left.maxHi
	}
	if n.right != nil && n.right.maxHi > n.maxHi {
		n.maxHi = n.right.maxHi
	}
	return n
}

// split partitions by interval start: left holds nodes with iv.Lo < key.
func split(n *node, key uint64) (l, r *node) {
	if n == nil {
		return nil, nil
	}
	if n.iv.Lo < key {
		a, b := split(n.right, key)
		n.right = a
		return upd(n), b
	}
	a, b := split(n.left, key)
	n.left = b
	return a, upd(n)
}

// merge joins two treaps where every key in l precedes every key in r.
func merge(l, r *node) *node {
	switch {
	case l == nil:
		return r
	case r == nil:
		return l
	case l.prio > r.prio:
		l.right = merge(l.right, r)
		return upd(l)
	default:
		r.left = merge(l, r.left)
		return upd(r)
	}
}

// popMin removes and returns the leftmost node.
func popMin(n *node) (rest, min *node) {
	if n.left == nil {
		return n.right, n
	}
	rest, min = popMin(n.left)
	n.left = rest
	return upd(n), min
}

// Insert adds [lo, hi), merging with overlapping and adjacent intervals.
// Empty intervals are ignored.
func (t *Tree) Insert(lo, hi uint64) {
	if lo >= hi {
		return
	}
	// All intervals with start <= hi might merge; intervals are disjoint
	// and non-adjacent so only the predecessor of lo can overlap from the
	// left.
	left, rest := split(t.root, lo)
	// Check the rightmost interval of left: if it reaches lo, absorb it —
	// and reuse its node when the merged start is unchanged (the common
	// dense-sweep case, keeping one allocation per *range*, not per
	// access).
	var reuse *node
	if left != nil {
		rm := left
		for rm.right != nil {
			rm = rm.right
		}
		if rm.iv.Hi >= lo {
			var pred *node
			left, pred = splitOffMax(left)
			if pred.iv.Lo < lo {
				lo = pred.iv.Lo
			}
			if pred.iv.Hi > hi {
				hi = pred.iv.Hi
			}
			reuse = pred
			t.count--
		}
	}
	// Absorb everything in rest starting at or before hi.
	mid, right := split(rest, hi+1)
	for mid != nil {
		var mn *node
		mid, mn = popMin(mid)
		if mn.iv.Hi > hi {
			hi = mn.iv.Hi
		}
		if reuse == nil && mn.iv.Lo == lo {
			reuse = mn
		}
		t.count--
	}
	n := reuse
	if n == nil || n.iv.Lo != lo {
		n = &node{iv: Interval{lo, hi}, prio: prio(lo)}
	} else {
		n.iv = Interval{lo, hi}
		n.left, n.right = nil, nil
	}
	upd(n)
	t.count++
	t.root = merge(merge(left, n), right)
}

// splitOffMax removes the maximum node.
func splitOffMax(n *node) (rest, max *node) {
	if n.right == nil {
		return n.left, n
	}
	rest, max = splitOffMax(n.right)
	n.right = rest
	return upd(n), max
}

// InsertPoint records an access of width bytes at addr.
func (t *Tree) InsertPoint(addr uint64, width uint8) {
	t.Insert(addr, addr+uint64(width))
}

// Contains reports whether addr is covered.
func (t *Tree) Contains(addr uint64) bool {
	n := t.root
	for n != nil {
		if addr >= n.iv.Lo && addr < n.iv.Hi {
			return true
		}
		if addr < n.iv.Lo {
			n = n.left
		} else {
			n = n.right
		}
	}
	return false
}

// Visit calls fn on every interval in ascending order; fn returning false
// stops the walk.
func (t *Tree) Visit(fn func(Interval) bool) { visit(t.root, fn) }

func visit(n *node, fn func(Interval) bool) bool {
	if n == nil {
		return true
	}
	return visit(n.left, fn) && fn(n.iv) && visit(n.right, fn)
}

// Intervals returns all intervals in ascending order.
func (t *Tree) Intervals() []Interval {
	out := make([]Interval, 0, t.count)
	t.Visit(func(iv Interval) bool { out = append(out, iv); return true })
	return out
}

// Bytes returns the total number of covered bytes.
func (t *Tree) Bytes() uint64 {
	var n uint64
	t.Visit(func(iv Interval) bool { n += iv.Hi - iv.Lo; return true })
	return n
}

// overlap walks nodes of n intersecting [lo,hi), using maxHi pruning.
func overlap(n *node, lo, hi uint64, fn func(Interval) bool) bool {
	if n == nil || n.maxHi <= lo {
		return true
	}
	if !overlap(n.left, lo, hi, fn) {
		return false
	}
	if n.iv.Lo < hi && n.iv.Hi > lo {
		if !fn(n.iv) {
			return false
		}
	}
	if n.iv.Lo >= hi {
		// Everything right of n starts even later.
		return true
	}
	return overlap(n.right, lo, hi, fn)
}

// VisitOverlap calls fn for every stored interval intersecting [lo, hi).
func (t *Tree) VisitOverlap(lo, hi uint64, fn func(Interval) bool) {
	if lo < hi {
		overlap(t.root, lo, hi, fn)
	}
}

// IntersectsRange reports whether any stored interval intersects [lo, hi).
func (t *Tree) IntersectsRange(lo, hi uint64) bool {
	found := false
	t.VisitOverlap(lo, hi, func(Interval) bool { found = true; return false })
	return found
}

// ForEachIntersection calls fn with every maximal byte range covered by both
// a and b, in ascending order; fn returning false stops. This is the
// s1.w ∩ (s2.r ∪ s2.w) primitive of the determinacy-race analysis.
func ForEachIntersection(a, b *Tree, fn func(lo, hi uint64) bool) {
	if a == nil || b == nil || a.root == nil || b.root == nil {
		return
	}
	// Iterate the smaller tree, range-query the larger.
	if a.count > b.count {
		a, b = b, a
	}
	stop := false
	a.Visit(func(ia Interval) bool {
		b.VisitOverlap(ia.Lo, ia.Hi, func(ib Interval) bool {
			lo, hi := ia.Lo, ia.Hi
			if ib.Lo > lo {
				lo = ib.Lo
			}
			if ib.Hi < hi {
				hi = ib.Hi
			}
			if !fn(lo, hi) {
				stop = true
			}
			return !stop
		})
		return !stop
	})
}

// Intersects reports whether a and b share any byte.
func Intersects(a, b *Tree) bool {
	out := false
	ForEachIntersection(a, b, func(lo, hi uint64) bool { out = true; return false })
	return out
}

// NodeFootprintBytes approximates per-node host memory, used for the tool
// memory-overhead metric.
const NodeFootprintBytes = 56

// Footprint approximates the host memory held by the tree.
func (t *Tree) Footprint() uint64 { return uint64(t.count) * NodeFootprintBytes }
