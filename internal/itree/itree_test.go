package itree

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestInsertMergesOverlapping(t *testing.T) {
	tr := New()
	tr.Insert(10, 20)
	tr.Insert(15, 25)
	if tr.Len() != 1 {
		t.Fatalf("len = %d", tr.Len())
	}
	ivs := tr.Intervals()
	if ivs[0] != (Interval{10, 25}) {
		t.Fatalf("merged = %v", ivs[0])
	}
}

func TestInsertMergesAdjacent(t *testing.T) {
	tr := New()
	tr.Insert(10, 20)
	tr.Insert(20, 30) // adjacent right
	tr.Insert(0, 10)  // adjacent left
	if tr.Len() != 1 {
		t.Fatalf("len = %d, ivs = %v", tr.Len(), tr.Intervals())
	}
	if got := tr.Intervals()[0]; got != (Interval{0, 30}) {
		t.Fatalf("merged = %v", got)
	}
}

func TestInsertKeepsDisjoint(t *testing.T) {
	tr := New()
	tr.Insert(0, 4)
	tr.Insert(8, 12)
	tr.Insert(100, 104)
	if tr.Len() != 3 {
		t.Fatalf("len = %d", tr.Len())
	}
	if tr.Bytes() != 12 {
		t.Fatalf("bytes = %d", tr.Bytes())
	}
}

func TestInsertBridgesMany(t *testing.T) {
	tr := New()
	for i := uint64(0); i < 10; i++ {
		tr.Insert(i*10, i*10+4)
	}
	if tr.Len() != 10 {
		t.Fatalf("len = %d", tr.Len())
	}
	tr.Insert(0, 95) // swallows everything
	if tr.Len() != 1 {
		t.Fatalf("after bridge len = %d: %v", tr.Len(), tr.Intervals())
	}
	if got := tr.Intervals()[0]; got != (Interval{0, 95}) {
		t.Fatalf("bridge = %v", got)
	}
}

func TestEmptyIntervalIgnored(t *testing.T) {
	tr := New()
	tr.Insert(5, 5)
	tr.Insert(7, 3)
	if !tr.Empty() {
		t.Fatal("empty insert stored something")
	}
}

func TestContains(t *testing.T) {
	tr := New()
	tr.Insert(10, 20)
	tr.Insert(30, 40)
	for _, a := range []uint64{10, 15, 19, 30, 39} {
		if !tr.Contains(a) {
			t.Errorf("Contains(%d) = false", a)
		}
	}
	for _, a := range []uint64{9, 20, 25, 40} {
		if tr.Contains(a) {
			t.Errorf("Contains(%d) = true", a)
		}
	}
}

func TestDenseAccumulationStaysCompact(t *testing.T) {
	// A segment sweeping an array byte by byte must end up with ONE node —
	// the compactness claim of paper Fig. 3.
	tr := New()
	for i := uint64(0); i < 100000; i += 8 {
		tr.InsertPoint(0x1000+i, 8)
	}
	if tr.Len() != 1 {
		t.Fatalf("dense sweep produced %d intervals", tr.Len())
	}
}

func TestVisitOverlapAndIntersections(t *testing.T) {
	a := New()
	a.Insert(0, 10)
	a.Insert(20, 30)
	a.Insert(40, 50)
	var got []Interval
	a.VisitOverlap(25, 45, func(iv Interval) bool { got = append(got, iv); return true })
	if len(got) != 2 || got[0] != (Interval{20, 30}) || got[1] != (Interval{40, 50}) {
		t.Fatalf("overlap visit = %v", got)
	}
	if a.IntersectsRange(10, 20) {
		t.Error("gap reported as intersecting")
	}
	if !a.IntersectsRange(9, 10) {
		t.Error("edge byte missed")
	}

	b := New()
	b.Insert(5, 22)
	b.Insert(48, 60)
	var hits [][2]uint64
	ForEachIntersection(a, b, func(lo, hi uint64) bool {
		hits = append(hits, [2]uint64{lo, hi})
		return true
	})
	want := [][2]uint64{{5, 10}, {20, 22}, {48, 50}}
	if len(hits) != len(want) {
		t.Fatalf("intersections = %v", hits)
	}
	for i := range want {
		if hits[i] != want[i] {
			t.Fatalf("intersections = %v, want %v", hits, want)
		}
	}
	if !Intersects(a, b) || Intersects(New(), a) {
		t.Error("Intersects wrong")
	}
}

// naiveSet is the reference model: a byte set.
type naiveSet map[uint64]bool

func (s naiveSet) insert(lo, hi uint64) {
	for a := lo; a < hi; a++ {
		s[a] = true
	}
}

// TestQuickTreeMatchesModel checks coverage and interval invariants against
// the naive model for random insert sequences.
func TestQuickTreeMatchesModel(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := New()
		model := naiveSet{}
		for i := 0; i < int(n); i++ {
			lo := uint64(rng.Intn(200))
			hi := lo + uint64(rng.Intn(20))
			tr.Insert(lo, hi)
			model.insert(lo, hi)
		}
		// Same coverage.
		for a := uint64(0); a < 230; a++ {
			if tr.Contains(a) != model[a] {
				return false
			}
		}
		// Invariant: intervals sorted, disjoint, non-adjacent, non-empty.
		ivs := tr.Intervals()
		var bytes uint64
		for i, iv := range ivs {
			if iv.Lo >= iv.Hi {
				return false
			}
			if i > 0 && ivs[i-1].Hi >= iv.Lo {
				return false
			}
			bytes += iv.Hi - iv.Lo
		}
		if bytes != uint64(len(model)) {
			return false
		}
		return tr.Len() == len(ivs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickIntersectionMatchesModel cross-checks ForEachIntersection.
func TestQuickIntersectionMatchesModel(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a, b := New(), New()
		ma, mb := naiveSet{}, naiveSet{}
		for i := 0; i < 30; i++ {
			lo := uint64(rng.Intn(150))
			hi := lo + uint64(rng.Intn(12))
			if i%2 == 0 {
				a.Insert(lo, hi)
				ma.insert(lo, hi)
			} else {
				b.Insert(lo, hi)
				mb.insert(lo, hi)
			}
		}
		got := naiveSet{}
		ForEachIntersection(a, b, func(lo, hi uint64) bool {
			got.insert(lo, hi)
			return true
		})
		for x := uint64(0); x < 170; x++ {
			want := ma[x] && mb[x]
			if got[x] != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestFootprint(t *testing.T) {
	tr := New()
	tr.Insert(0, 4)
	tr.Insert(10, 14)
	if tr.Footprint() != 2*NodeFootprintBytes {
		t.Fatalf("footprint = %d", tr.Footprint())
	}
}

func BenchmarkInsertDense(b *testing.B) {
	tr := New()
	for i := 0; i < b.N; i++ {
		tr.InsertPoint(uint64(i*8), 8)
	}
}

func BenchmarkInsertSparse(b *testing.B) {
	tr := New()
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < b.N; i++ {
		tr.InsertPoint(uint64(rng.Intn(1<<26))<<4, 8)
	}
}
