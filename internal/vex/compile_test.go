package vex

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

// binOps and unOps enumerate the full Op space for the table tests.
var binOps = []Op{
	OpAdd, OpSub, OpMul, OpDiv, OpRem, OpAnd, OpOr, OpXor, OpShl, OpShr,
	OpSar, OpCmpEQ, OpCmpNE, OpCmpLT, OpCmpGE, OpCmpLTU, OpCmpGEU,
	OpFAdd, OpFSub, OpFMul, OpFDiv, OpFCmpLT, OpFCmpLE, OpFCmpEQ,
}

var unOps = []Op{OpNot, OpNeg, OpItoF, OpFtoI}

// TestOpTableMatchesEvalBinop property-tests that the pre-bound op table the
// compiled engine dispatches through is bit-for-bit the interpreter's
// EvalBinop/EvalUnop — the one invariant the differential tests rest on.
func TestOpTableMatchesEvalBinop(t *testing.T) {
	edge := []uint64{
		0, 1, 2, 63, 64, 65, ^uint64(0), 1 << 63, (1 << 63) - 1,
		math.Float64bits(0), math.Float64bits(1.5), math.Float64bits(-2.25),
		math.Float64bits(math.NaN()), math.Float64bits(math.Inf(1)),
	}
	for _, op := range binOps {
		fn := BinopFn(op)
		if fn == nil {
			t.Fatalf("BinopFn(%s) = nil", op)
		}
		for _, a := range edge {
			for _, b := range edge {
				if got, want := fn(a, b), EvalBinop(op, a, b); got != want {
					t.Fatalf("%s(%#x, %#x): table %#x, EvalBinop %#x", op, a, b, got, want)
				}
			}
		}
		if err := quick.Check(func(a, b uint64) bool {
			return fn(a, b) == EvalBinop(op, a, b)
		}, nil); err != nil {
			t.Fatalf("%s: %v", op, err)
		}
	}
	for _, op := range unOps {
		fn := UnopFn(op)
		if fn == nil {
			t.Fatalf("UnopFn(%s) = nil", op)
		}
		for _, a := range edge {
			if got, want := fn(a), EvalUnop(op, a); got != want {
				t.Fatalf("%s(%#x): table %#x, EvalUnop %#x", op, a, got, want)
			}
		}
		if err := quick.Check(func(a uint64) bool {
			return fn(a) == EvalUnop(op, a)
		}, nil); err != nil {
			t.Fatalf("%s: %v", op, err)
		}
	}
}

func TestBinopFnUnaryIsNotBinary(t *testing.T) {
	sb := &SuperBlock{GuestAddr: 0x1000}
	sb.WrTmpBinop(OpNot, ConstE(1), ConstE(2))
	sb.Next = ConstE(0x1008)
	if _, err := Compile(sb); err == nil || !strings.Contains(err.Error(), "bad binary op") {
		t.Fatalf("want bad-binary-op error, got %v", err)
	}
}

func TestCompileFoldsConstants(t *testing.T) {
	sb := &SuperBlock{GuestAddr: 0x1000}
	sb.IMark(0x1000, 8)
	a := sb.WrTmpBinop(OpAdd, ConstE(40), ConstE(2)) // folds to 42
	b := sb.WrTmpUnop(OpNeg, ConstE(5))              // folds to -5
	sb.PutReg(1, TmpE(a))
	sb.PutReg(2, TmpE(b))
	sb.Next = ConstE(0x1008)
	sb.NextJK = JKBoring
	c, err := Compile(sb)
	if err != nil {
		t.Fatal(err)
	}
	var movs []UOp
	for _, u := range c.Ops {
		if u.Code == UMovC {
			movs = append(movs, u)
		}
		if u.Code == UBinTT || u.Code == UBinTC || u.Code == UBinCT || u.Code == UUnT {
			t.Fatalf("const operation survived folding: %+v", u)
		}
	}
	minus5 := ^uint64(5) + 1
	if len(movs) != 2 || movs[0].Imm != 42 || movs[1].Imm != minus5 {
		t.Fatalf("bad folded moves: %+v", movs)
	}
	if c.NInstrs != 1 {
		t.Fatalf("NInstrs = %d, want 1", c.NInstrs)
	}
}

func TestCompileExitGuards(t *testing.T) {
	sb := &SuperBlock{GuestAddr: 0x1000}
	sb.Exit(ConstE(0), 0x2000, JKBoring) // never taken: dropped
	sb.Exit(ConstE(7), 0x3000, JKBoring) // always taken: UJmp
	sb.Next = ConstE(0x1008)
	sb.NextJK = JKBoring
	c, err := Compile(sb)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Ops) != 1 || c.Ops[0].Code != UJmp || c.Ops[0].Imm != 0x3000 {
		t.Fatalf("want a single UJmp to 0x3000, got %+v", c.Ops)
	}
	// Chain sites: one for the UJmp, one for the const boring fall-through.
	if c.NChains != 2 || c.Ops[0].ChainIdx != 0 || c.NextChain != 1 {
		t.Fatalf("chain layout: NChains=%d ChainIdx=%d NextChain=%d",
			c.NChains, c.Ops[0].ChainIdx, c.NextChain)
	}
}

func TestCompileChainSites(t *testing.T) {
	sb := &SuperBlock{GuestAddr: 0x1000}
	g1 := sb.WrTmpExpr(RegE(1))
	g2 := sb.WrTmpExpr(RegE(2))
	sb.Exit(TmpE(g1), 0x2000, JKBoring)
	sb.Exit(TmpE(g2), 0x3000, JKBoring)
	sb.Next = ConstE(0x1010)
	sb.NextJK = JKBoring
	c, err := Compile(sb)
	if err != nil {
		t.Fatal(err)
	}
	if c.NChains != 3 || c.NextChain != 2 {
		t.Fatalf("NChains=%d NextChain=%d, want 3 and 2", c.NChains, c.NextChain)
	}
	// A dynamic (register) fall-through or a non-boring jump kind gets no
	// chain site.
	sb2 := &SuperBlock{GuestAddr: 0x1000}
	sb2.Next = RegE(guestLR)
	sb2.NextJK = JKRet
	c2, err := Compile(sb2)
	if err != nil {
		t.Fatal(err)
	}
	if c2.NChains != 0 || c2.NextChain != NoChain {
		t.Fatalf("dynamic edge chained: NChains=%d NextChain=%d", c2.NChains, c2.NextChain)
	}
}

const guestLR = 30 // any register number; the compiler does not interpret it

func TestCompileScratchStore(t *testing.T) {
	sb := &SuperBlock{GuestAddr: 0x1000}
	sb.Store(W32, ConstE(0x9000), ConstE(0xabcd)) // const addr, const data
	sb.Next = ConstE(0x1008)
	c, err := Compile(sb)
	if err != nil {
		t.Fatal(err)
	}
	if c.NFrame != sb.NTemps+1 {
		t.Fatalf("NFrame = %d, want NTemps+1 = %d", c.NFrame, sb.NTemps+1)
	}
	if len(c.Ops) != 2 {
		t.Fatalf("want UMovC + UStCT, got %+v", c.Ops)
	}
	mov, st := c.Ops[0], c.Ops[1]
	if mov.Code != UMovC || mov.Imm != 0xabcd || mov.Dst != uint32(sb.NTemps) {
		t.Fatalf("bad scratch mov: %+v", mov)
	}
	if st.Code != UStCT || st.Imm != 0x9000 || st.B != mov.Dst || st.Wd != 4 {
		t.Fatalf("bad scratch store: %+v", st)
	}
}

func TestCompileDirtyPrebinding(t *testing.T) {
	fn := func(_ any, args []uint64) uint64 { return 99 }
	sb := &SuperBlock{GuestAddr: 0x1000}
	tv := sb.WrTmpExpr(ConstE(11))
	res := sb.NewTemp()
	sb.Append(Stmt{Kind: SDirty, Tmp: res, Name: "helper", Fn: fn,
		Args: []Expr{ConstE(7), TmpE(tv), RegE(3)}})
	sb.Next = ConstE(0x1008)
	c, err := Compile(sb)
	if err != nil {
		t.Fatal(err)
	}
	var d *DirtyOp
	for _, u := range c.Ops {
		if u.Code == UDirty {
			d = u.Dirty
		}
	}
	if d == nil || d.Name != "helper" || !d.HasTmp || d.Tmp != uint32(res) {
		t.Fatalf("bad dirty op: %+v", d)
	}
	want := []CArg{
		{Kind: KindConst, Imm: 7},
		{Kind: KindRdTmp, Idx: uint32(tv)},
		{Kind: KindGetReg, Idx: 3},
	}
	if len(d.Args) != len(want) {
		t.Fatalf("args: %+v", d.Args)
	}
	for i, a := range d.Args {
		if a != want[i] {
			t.Fatalf("arg %d: got %+v, want %+v", i, a, want[i])
		}
	}
}

func TestCompileRejectsNilDirty(t *testing.T) {
	sb := &SuperBlock{GuestAddr: 0x1000}
	sb.Append(Stmt{Kind: SDirty, Tmp: NoTemp, Name: "broken"})
	sb.Next = ConstE(0)
	if _, err := Compile(sb); err == nil || !strings.Contains(err.Error(), "nil helper") {
		t.Fatalf("want nil-helper error, got %v", err)
	}
}

func TestCompileRejectsUnknownStmt(t *testing.T) {
	sb := &SuperBlock{GuestAddr: 0x1000}
	sb.Append(Stmt{Kind: StmtKind(200)})
	sb.Next = ConstE(0)
	if _, err := Compile(sb); err == nil || !strings.Contains(err.Error(), "unknown statement") {
		t.Fatalf("want unknown-statement error, got %v", err)
	}
}
