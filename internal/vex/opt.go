package vex

// Optimize performs the IR cleanups Valgrind's VEX applies to translated
// superblocks before handing them to tools: constant folding, copy
// propagation through temporaries, and dead-temporary elimination. The
// result computes exactly the same machine state (Validate-able, and
// property-tested against the unoptimized block in the dbi package).
//
// Only pure statements are touched: loads, stores, register writes, exits
// and dirty calls keep their order and side effects.
//
// Optimize runs once per translation, on the hot path of every cold block
// dispatch, so its working state is flat slices indexed by temp number
// rather than maps, and the output statement list is sized up front.
func Optimize(sb *SuperBlock) *SuperBlock {
	out := &SuperBlock{
		GuestAddr: sb.GuestAddr,
		NTemps:    sb.NTemps,
		NextJK:    sb.NextJK,
		Aux:       sb.Aux,
		Stmts:     make([]Stmt, 0, len(sb.Stmts)),
	}
	// Per-temp substitution state: a known constant value, or an aliased
	// expression (another temp or a register read) that may replace reads
	// of the temp.
	type tstate struct {
		hasKnown bool
		hasAlias bool
		known    uint64
		alias    Expr
	}
	ts := make([]tstate, sb.NTemps)

	subst := func(e Expr) Expr {
		if e.Kind == KindRdTmp && uint32(e.Tmp) < uint32(len(ts)) {
			s := &ts[e.Tmp]
			if s.hasKnown {
				return ConstE(s.known)
			}
			if s.hasAlias {
				return s.alias
			}
		}
		return e
	}

	for _, s := range sb.Stmts {
		switch s.Kind {
		case SIMark:
			out.Append(s)
		case SWrTmpExpr:
			e := subst(s.E1)
			switch e.Kind {
			case KindConst:
				ts[s.Tmp] = tstate{hasKnown: true, known: e.Const}
				// Keep the statement for now; DCE drops it if the
				// temp has no remaining readers (e.g. a Dirty arg
				// still wants it by name after substitution? no —
				// all readers are substituted, so it dies unless
				// something non-substitutable reads it).
				out.Append(Stmt{Kind: SWrTmpExpr, Tmp: s.Tmp, E1: e})
			case KindRdTmp, KindGetReg:
				// Copy propagation. GetReg aliasing is only safe
				// until the register is rewritten; track and
				// invalidate below on PutReg.
				ts[s.Tmp] = tstate{hasAlias: true, alias: e}
				out.Append(Stmt{Kind: SWrTmpExpr, Tmp: s.Tmp, E1: e})
			}
		case SWrTmpBinop:
			a, b := subst(s.E1), subst(s.E2)
			if a.Kind == KindConst && b.Kind == KindConst {
				v := EvalBinop(s.Op, a.Const, b.Const)
				ts[s.Tmp] = tstate{hasKnown: true, known: v}
				out.Append(Stmt{Kind: SWrTmpExpr, Tmp: s.Tmp, E1: ConstE(v)})
				continue
			}
			out.Append(Stmt{Kind: SWrTmpBinop, Tmp: s.Tmp, Op: s.Op, E1: a, E2: b})
		case SWrTmpUnop:
			a := subst(s.E1)
			if a.Kind == KindConst {
				v := EvalUnop(s.Op, a.Const)
				ts[s.Tmp] = tstate{hasKnown: true, known: v}
				out.Append(Stmt{Kind: SWrTmpExpr, Tmp: s.Tmp, E1: ConstE(v)})
				continue
			}
			out.Append(Stmt{Kind: SWrTmpUnop, Tmp: s.Tmp, Op: s.Op, E1: a})
		case SWrTmpLoad:
			out.Append(Stmt{Kind: SWrTmpLoad, Tmp: s.Tmp, Wd: s.Wd, E1: subst(s.E1)})
		case SStore:
			out.Append(Stmt{Kind: SStore, Wd: s.Wd, E1: subst(s.E1), E2: subst(s.E2)})
		case SPutReg:
			// Invalidate GetReg aliases of this register.
			for i := range ts {
				if ts[i].hasAlias && ts[i].alias.Kind == KindGetReg && ts[i].alias.Reg == s.Reg {
					ts[i].hasAlias = false
				}
			}
			out.Append(Stmt{Kind: SPutReg, Reg: s.Reg, E1: subst(s.E1)})
		case SExit:
			out.Append(Stmt{Kind: SExit, E1: subst(s.E1), Target: s.Target, JK: s.JK})
		case SDirty:
			args := make([]Expr, len(s.Args))
			for i, a := range s.Args {
				args[i] = subst(a)
			}
			ns := s
			ns.Args = args
			out.Append(ns)
		default:
			out.Append(s)
		}
	}
	out.Next = subst(sb.Next)
	deadTempElim(out)
	return out
}

// deadTempElim removes pure WrTmp statements whose temporary is never read,
// filtering sb.Stmts in place (the caller owns the block). Substitution has
// already rewritten every reader, so a temp that fed only folded expressions
// has no uses left.
func deadTempElim(sb *SuperBlock) {
	used := make([]bool, sb.NTemps)
	mark := func(e Expr) {
		if e.Kind == KindRdTmp {
			used[e.Tmp] = true
		}
	}
	for _, s := range sb.Stmts {
		switch s.Kind {
		case SWrTmpExpr, SWrTmpUnop, SWrTmpLoad:
			mark(s.E1)
		case SWrTmpBinop, SStore:
			mark(s.E1)
			mark(s.E2)
		case SPutReg, SExit:
			mark(s.E1)
		case SDirty:
			for _, a := range s.Args {
				mark(a)
			}
		}
	}
	mark(sb.Next)
	kept := sb.Stmts[:0]
	for _, s := range sb.Stmts {
		switch s.Kind {
		case SWrTmpExpr, SWrTmpBinop, SWrTmpUnop:
			// Pure computations: drop when dead. Loads are kept (a
			// tool may have instrumented them; and a dead load is
			// still an access the guest performed).
			if !used[s.Tmp] {
				continue
			}
		}
		kept = append(kept, s)
	}
	sb.Stmts = kept
}
