package vex

import "testing"

func TestOptimizeFoldsConstants(t *testing.T) {
	sb := &SuperBlock{GuestAddr: 0x1000}
	sb.IMark(0x1000, 8)
	a := sb.WrTmpExpr(ConstE(6))
	b := sb.WrTmpExpr(ConstE(7))
	c := sb.WrTmpBinop(OpMul, TmpE(a), TmpE(b))
	d := sb.WrTmpUnop(OpNeg, TmpE(c))
	sb.PutReg(3, TmpE(d))
	sb.Next = ConstE(0x1008)
	sb.NextJK = JKBoring

	opt := Optimize(sb)
	if err := opt.Validate(); err != nil {
		t.Fatal(err)
	}
	// Everything folds into PUT(r3) = -42; the pure temps die.
	var puts int
	for _, s := range opt.Stmts {
		switch s.Kind {
		case SPutReg:
			puts++
			if s.E1.Kind != KindConst || int64(s.E1.Const) != -42 {
				t.Fatalf("PUT operand = %v", s.E1)
			}
		case SWrTmpExpr, SWrTmpBinop, SWrTmpUnop:
			t.Fatalf("pure temp survived: %v", s)
		}
	}
	if puts != 1 {
		t.Fatalf("puts = %d", puts)
	}
}

func TestOptimizePreservesSideEffects(t *testing.T) {
	sb := &SuperBlock{GuestAddr: 0x1000}
	sb.IMark(0x1000, 8)
	addr := sb.WrTmpBinop(OpAdd, ConstE(0x2000), ConstE(8))
	v := sb.WrTmpLoad(W64, TmpE(addr))
	sb.Store(W64, ConstE(0x3000), TmpE(v))
	sb.Dirty("probe", func(any, []uint64) uint64 { return 0 }, TmpE(addr))
	sb.Exit(ConstE(0), 0x4000, JKBoring)
	sb.Next = ConstE(0x1008)

	opt := Optimize(sb)
	if err := opt.Validate(); err != nil {
		t.Fatal(err)
	}
	var loads, stores, dirties, exits int
	for _, s := range opt.Stmts {
		switch s.Kind {
		case SWrTmpLoad:
			loads++
			if s.E1.Kind != KindConst || s.E1.Const != 0x2008 {
				t.Fatalf("load address not folded: %v", s.E1)
			}
		case SStore:
			stores++
		case SDirty:
			dirties++
			if s.Args[0].Kind != KindConst || s.Args[0].Const != 0x2008 {
				t.Fatalf("dirty arg not folded: %v", s.Args[0])
			}
		case SExit:
			exits++
		}
	}
	if loads != 1 || stores != 1 || dirties != 1 || exits != 1 {
		t.Fatalf("side effects lost: ld=%d st=%d dirty=%d exit=%d", loads, stores, dirties, exits)
	}
}

func TestOptimizeGetRegAliasInvalidation(t *testing.T) {
	// t0 = GET(r1); PUT(r1) = 5; PUT(r2) = t0 — t0 must NOT become
	// GET(r1) after the overwrite.
	sb := &SuperBlock{GuestAddr: 0x1000}
	t0 := sb.WrTmpExpr(RegE(1))
	sb.PutReg(1, ConstE(5))
	sb.PutReg(2, TmpE(t0))
	sb.Next = ConstE(0x1008)

	opt := Optimize(sb)
	if err := opt.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, s := range opt.Stmts {
		if s.Kind == SPutReg && s.Reg == 2 {
			if s.E1.Kind == KindGetReg {
				t.Fatal("stale GetReg alias substituted past the overwrite")
			}
		}
	}
}

func TestOptimizeCopyPropagation(t *testing.T) {
	// Chains of copies collapse.
	sb := &SuperBlock{GuestAddr: 0x1000}
	t0 := sb.WrTmpExpr(RegE(4))
	t1 := sb.WrTmpExpr(TmpE(t0))
	t2 := sb.WrTmpExpr(TmpE(t1))
	sb.PutReg(5, TmpE(t2))
	sb.Next = ConstE(0x1008)
	opt := Optimize(sb)
	for _, s := range opt.Stmts {
		if s.Kind == SPutReg {
			if s.E1.Kind != KindGetReg || s.E1.Reg != 4 {
				t.Fatalf("copy chain not collapsed: %v", s.E1)
			}
		}
	}
	if len(opt.Stmts) != 1 {
		t.Fatalf("dead copies survived: %d stmts", len(opt.Stmts))
	}
}
