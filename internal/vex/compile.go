package vex

// This file is the superblock compilation stage: after translation, tool
// instrumentation and Optimize, a SuperBlock is lowered once into a flat
// array of pre-resolved micro-ops (UOp) that an execution engine can run
// without re-interpreting expressions. It is the analog of Valgrind's
// instruction selection step — the reason translated code runs from a code
// cache instead of being re-walked on every execution.
//
// The lowering resolves, at compile time, everything the IR interpreter
// decides per execution:
//
//   - operand kinds: every const/tmp/reg operand choice is fused into the
//     micro-op code (UBinTC = "binop of a temp and a constant"), so the
//     engine reads operands with direct indexed loads instead of a
//     per-operand kind switch;
//   - operation dispatch: binary and unary operations are bound to funcs
//     from the op tables (binFns/unFns) instead of going through the
//     EvalBinop switch on every execution;
//   - dirty-call arguments: helper arguments are pre-resolved into CArg
//     descriptors and the helper func pointer is carried on the op;
//   - constant folding of anything Optimize left behind (NoOptimize mode,
//     tool-inserted IR): const⊕const binops, const unops and never-taken
//     exits disappear here;
//   - the temp arena size is fixed per block (NFrame), including any
//     scratch temps the lowering itself synthesizes.
//
// Control-flow micro-ops (UJmp, UExit*) and a constant fall-through edge
// carry a chain-site index: execution engines use those to cache direct
// pointers to successor translations (Valgrind-style block chaining),
// bypassing the translation-cache lookup on the hot path.

import "fmt"

// BinFn is a pre-bound binary operation (an entry of the op table).
type BinFn func(a, b uint64) uint64

// UnFn is a pre-bound unary operation.
type UnFn func(a uint64) uint64

// binFns is the binary op table. Entries must agree bit-for-bit with
// EvalBinop (property-tested in compile_test.go); the table exists so a
// compiled micro-op carries one direct func instead of re-entering the
// switch per execution.
var binFns = [...]BinFn{
	OpAdd: func(a, b uint64) uint64 { return a + b },
	OpSub: func(a, b uint64) uint64 { return a - b },
	OpMul: func(a, b uint64) uint64 { return a * b },
	OpDiv: func(a, b uint64) uint64 {
		if b == 0 {
			return 0
		}
		return uint64(int64(a) / int64(b))
	},
	OpRem: func(a, b uint64) uint64 {
		if b == 0 {
			return 0
		}
		return uint64(int64(a) % int64(b))
	},
	OpAnd:    func(a, b uint64) uint64 { return a & b },
	OpOr:     func(a, b uint64) uint64 { return a | b },
	OpXor:    func(a, b uint64) uint64 { return a ^ b },
	OpShl:    func(a, b uint64) uint64 { return a << (b & 63) },
	OpShr:    func(a, b uint64) uint64 { return a >> (b & 63) },
	OpSar:    func(a, b uint64) uint64 { return uint64(int64(a) >> (b & 63)) },
	OpCmpEQ:  func(a, b uint64) uint64 { return b2u(a == b) },
	OpCmpNE:  func(a, b uint64) uint64 { return b2u(a != b) },
	OpCmpLT:  func(a, b uint64) uint64 { return b2u(int64(a) < int64(b)) },
	OpCmpGE:  func(a, b uint64) uint64 { return b2u(int64(a) >= int64(b)) },
	OpCmpLTU: func(a, b uint64) uint64 { return b2u(a < b) },
	OpCmpGEU: func(a, b uint64) uint64 { return b2u(a >= b) },
	OpFAdd:   func(a, b uint64) uint64 { return f2u(u2f(a) + u2f(b)) },
	OpFSub:   func(a, b uint64) uint64 { return f2u(u2f(a) - u2f(b)) },
	OpFMul:   func(a, b uint64) uint64 { return f2u(u2f(a) * u2f(b)) },
	OpFDiv:   func(a, b uint64) uint64 { return f2u(u2f(a) / u2f(b)) },
	OpFCmpLT: func(a, b uint64) uint64 { return b2u(u2f(a) < u2f(b)) },
	OpFCmpLE: func(a, b uint64) uint64 { return b2u(u2f(a) <= u2f(b)) },
	OpFCmpEQ: func(a, b uint64) uint64 { return b2u(u2f(a) == u2f(b)) },
}

// unFns is the unary op table.
var unFns = [...]UnFn{
	OpNot:  func(a uint64) uint64 { return ^a },
	OpNeg:  func(a uint64) uint64 { return -a },
	OpItoF: func(a uint64) uint64 { return f2u(float64(int64(a))) },
	OpFtoI: func(a uint64) uint64 { return uint64(int64(u2f(a))) },
}

// BinopFn returns the pre-bound func for a binary operation, or nil when op
// is not binary.
func BinopFn(op Op) BinFn {
	if int(op) < len(binFns) {
		return binFns[op]
	}
	return nil
}

// UnopFn returns the pre-bound func for a unary operation, or nil.
func UnopFn(op Op) UnFn {
	if int(op) < len(unFns) {
		return unFns[op]
	}
	return nil
}

// UCode is a micro-op code: the statement kind fused with the pre-resolved
// operand kinds (T = temp, C = constant, R = guest register).
type UCode uint8

// Micro-op codes. There is no IMark micro-op: instruction counting is folded
// into the exit ops (each carries the number of guest instructions started
// before it is taken, in Dst) and fault attribution uses the PCs/ICs side
// tables, so the hot loop never dispatches a counter bump.
const (
	// Moves into a temp: tmps[Dst] = Imm / tmps[A] / regs[A].
	UMovC UCode = iota
	UMovT
	UMovR
	// Guest register writes: regs[Dst] = Imm / tmps[A] / regs[A].
	UPutC
	UPutT
	UPutR
	// Binops: tmps[Dst] = Fn(x, y); the code names the operand sources in
	// order (first operand, second operand). The constant operand, when
	// present, is Imm. Const⊕const is folded at compile time.
	UBinTT
	UBinTC
	UBinTR
	UBinCT
	UBinCR
	UBinRT
	UBinRC
	UBinRR
	// Unops: tmps[Dst] = Fn1(x). Const operands fold at compile time.
	UUnT
	UUnR
	// Loads: tmps[Dst] = LD[Wd](addr).
	ULdT
	ULdC
	ULdR
	// Stores: ST[Wd](addr) = data; addr source then data source. A
	// const/const store is lowered via a scratch temp (UMovC + UStTC is
	// never needed: UMovC + UStTC — see compileStore).
	UStTT
	UStTC
	UStTR
	UStCT
	UStCR
	UStRT
	UStRC
	UStRR
	// UExitT/UExitR: if (tmps[A] / regs[A]) != 0 goto Imm; ChainIdx names
	// the chain site for the taken edge. Dst carries the number of guest
	// instructions retired when the exit is taken.
	UExitT
	UExitR
	// UJmp: unconditional goto Imm (a compile-time always-taken exit).
	// Dst carries the retired-instruction count like the exits.
	UJmp
	// UDirty: helper call with pre-resolved arguments.
	UDirty

	// Fused micro-ops. The peephole pass in Compile merges the multi-op
	// sequences the translator emits for single guest instructions —
	// compute-into-temp followed by a single-use read of that temp — into
	// one dispatch. These carry the same semantics as the sequences they
	// replace, executed atomically within the op.

	// UPutBin**: regs[Dst] = Fn(x, y) — a binop whose single-use result
	// temp fed a register write. Operand sources mirror UBin**.
	UPutBinTT
	UPutBinTC
	UPutBinTR
	UPutBinCT
	UPutBinCR
	UPutBinRT
	UPutBinRC
	UPutBinRR
	// UPutUnT/UPutUnR: regs[Dst] = Fn1(x).
	UPutUnT
	UPutUnR
	// ULdPRI: regs[Dst] = LD[Wd](regs[A] + Imm) — the full base+offset
	// load-to-register pattern. ULdTRI is the same with a temp destination
	// (the loaded value had further uses).
	ULdPRI
	ULdTRI
	// UStRIR/UStRIT: ST[Wd](regs[A] + Imm) = regs[B] / tmps[B].
	UStRIR
	UStRIT
	// UExitBin**: if Fn(x, y) != 0 goto Imm — a compare feeding a
	// conditional exit. Only non-const operand shapes exist (a const
	// operand would need a second immediate). Dst carries the retired-
	// instruction count like plain exits.
	UExitBinTT
	UExitBinTR
	UExitBinRT
	UExitBinRR
)

// NoChain marks a micro-op without a chain site.
const NoChain int32 = -1

// UOp is one pre-lowered micro-op. Field use depends on Code; unused fields
// are zero. Imm doubles as the constant operand, the IMark address and the
// jump target — no code uses two of those at once.
type UOp struct {
	Code UCode
	Wd   uint8
	// Op is the IR operation a binop or unop micro-op was lowered from. The
	// engine never reads it (Fn/Fn1 are pre-bound); the peephole fuser uses
	// it to recognize address arithmetic (func values are not comparable),
	// and the translation store's decoder uses it to re-bind Fn/Fn1 from the
	// op tables after deserialization. Every op-table micro-op must carry it.
	Op       Op
	Dst      uint32
	A, B     uint32
	ChainIdx int32
	Imm      uint64
	Fn       BinFn
	Fn1      UnFn
	Dirty    *DirtyOp
}

// DirtyOp is the pre-bound form of a Dirty helper call.
type DirtyOp struct {
	Name string
	Fn   DirtyFn
	Args []CArg
	// Meta carries the helper's serializable parameters from the source
	// Stmt, so a deserialized or cross-core-adopted block can re-bind an
	// equivalent helper (the closure in Fn is bound to one core).
	Meta []uint64
	// Tmp is the result temp; HasTmp false means the result is dropped.
	Tmp    uint32
	HasTmp bool
	// InstrsBefore is the number of guest instructions started before this
	// call. The engine credits the instruction counters up to here before
	// invoking the helper, so tools observe the same counts the IR
	// interpreter would show them.
	InstrsBefore uint32
}

// CArg is a pre-resolved dirty-call argument.
type CArg struct {
	Kind ExprKind
	Idx  uint32
	Imm  uint64
}

// Compiled is a superblock lowered to micro-ops: the unit held in the
// compiled-translation cache and executed by the compiled engine.
type Compiled struct {
	// GuestAddr is the guest entry address of the superblock.
	GuestAddr uint64
	// Ops is the micro-op array.
	Ops []UOp
	// PCs[i] is the guest PC of the instruction op i belongs to, and
	// ICs[i] the number of guest instructions started up to and including
	// that op. Both are fault-path-only: the engine reads them when a
	// panic unwinds mid-block, to attribute the fault to the precise guest
	// instruction and to flush the instruction counters — the hot loop
	// never touches them.
	PCs []uint64
	ICs []uint32
	// NFrame is the temp-arena size the block needs (NTemps plus scratch
	// temps synthesized during lowering).
	NFrame uint32
	// NInstrs counts the guest instructions (IMarks) in the block.
	NInstrs int
	// LastPC is the PC of the block's final guest instruction: the call
	// site recorded on JKCall frames, and the attribution point for
	// faults raised by the block-end transfer.
	LastPC uint64
	// Fall-through edge: kind (const/tmp/reg), constant value or index,
	// jump kind and Aux exactly as on the SuperBlock.
	NextKind ExprKind
	NextImm  uint64
	NextIdx  uint32
	NextJK   JumpKind
	Aux      int32
	// NextChain is the chain site of a constant JKBoring fall-through
	// (NoChain otherwise).
	NextChain int32
	// NChains is the number of chain sites in the block; engines allocate
	// their successor-pointer array with this length.
	NChains int
}

// compiler accumulates state during one lowering.
type compiler struct {
	out    *Compiled
	nframe uint32
	chains int
	// pc/ic track the guest instruction the statements being lowered
	// belong to, for the PCs/ICs side tables.
	pc uint64
	ic uint32
	// uses[t] is the number of statement-level reads of temp t (including
	// dirty args and the block's Next). The peephole fuser only folds a
	// temp away when it has exactly one reader.
	uses []uint32
}

// newChain allocates a chain site.
func (cc *compiler) newChain() int32 {
	i := cc.chains
	cc.chains++
	return int32(i)
}

// scratch allocates a compiler-synthesized temp.
func (cc *compiler) scratch() uint32 {
	t := cc.nframe
	cc.nframe++
	return t
}

// emit appends a micro-op, recording its instruction PC and count.
func (cc *compiler) emit(u UOp) {
	cc.out.Ops = append(cc.out.Ops, u)
	cc.out.PCs = append(cc.out.PCs, cc.pc)
	cc.out.ICs = append(cc.out.ICs, cc.ic)
}

// singleUse reports whether temp t has exactly one statement-level reader.
func (cc *compiler) singleUse(t uint32) bool {
	return int(t) < len(cc.uses) && cc.uses[t] == 1
}

// countUses fills cc.uses from the statement list.
func (cc *compiler) countUses(sb *SuperBlock) {
	cc.uses = make([]uint32, sb.NTemps)
	cnt := func(e Expr) {
		if e.Kind == KindRdTmp && uint32(e.Tmp) < sb.NTemps {
			cc.uses[e.Tmp]++
		}
	}
	for i := range sb.Stmts {
		s := &sb.Stmts[i]
		switch s.Kind {
		case SWrTmpExpr, SWrTmpUnop, SWrTmpLoad, SPutReg, SExit:
			cnt(s.E1)
		case SWrTmpBinop, SStore:
			cnt(s.E1)
			cnt(s.E2)
		case SDirty:
			for _, a := range s.Args {
				cnt(a)
			}
		}
	}
	cnt(sb.Next)
}

// srcCode classifies an operand expression into the T/C/R triple used to
// select the fused code, returning the index (temp or register number) and
// the immediate.
func src(e Expr) (k ExprKind, idx uint32, imm uint64) {
	switch e.Kind {
	case KindConst:
		return KindConst, 0, e.Const
	case KindRdTmp:
		return KindRdTmp, uint32(e.Tmp), 0
	default:
		return KindGetReg, uint32(e.Reg), 0
	}
}

// Compile lowers a superblock into micro-ops. The input must be well-formed
// (Validate-clean); malformed statements produce an error, mirroring the
// interpreter's runtime checks at compile time instead.
func Compile(sb *SuperBlock) (*Compiled, error) {
	cc := &compiler{
		out: &Compiled{
			GuestAddr: sb.GuestAddr,
			Ops:       make([]UOp, 0, len(sb.Stmts)),
			PCs:       make([]uint64, 0, len(sb.Stmts)),
			ICs:       make([]uint32, 0, len(sb.Stmts)),
			NextJK:    sb.NextJK,
			Aux:       sb.Aux,
			NextChain: NoChain,
			LastPC:    sb.GuestAddr,
		},
		nframe: sb.NTemps,
		pc:     sb.GuestAddr,
	}
	cc.countUses(sb)
	out := cc.out
	for i := range sb.Stmts {
		s := &sb.Stmts[i]
		switch s.Kind {
		case SIMark:
			// No micro-op: exits carry retired-instruction counts and
			// the PCs/ICs tables carry fault attribution.
			out.NInstrs++
			out.LastPC = s.Addr
			cc.pc = s.Addr
			cc.ic++
		case SWrTmpExpr:
			cc.compileMov(uint32(s.Tmp), s.E1)
		case SWrTmpBinop:
			if err := cc.compileBinop(s); err != nil {
				return nil, err
			}
		case SWrTmpUnop:
			if err := cc.compileUnop(s); err != nil {
				return nil, err
			}
		case SWrTmpLoad:
			k, idx, imm := src(s.E1)
			code := ULdT
			switch k {
			case KindConst:
				code = ULdC
			case KindGetReg:
				code = ULdR
			}
			cc.emit(UOp{Code: code, Wd: uint8(s.Wd), Dst: uint32(s.Tmp), A: idx, Imm: imm})
		case SStore:
			cc.compileStore(s)
		case SPutReg:
			k, idx, imm := src(s.E1)
			switch k {
			case KindConst:
				cc.emit(UOp{Code: UPutC, Dst: uint32(s.Reg), Imm: imm})
			case KindRdTmp:
				cc.emit(UOp{Code: UPutT, Dst: uint32(s.Reg), A: idx})
			default:
				cc.emit(UOp{Code: UPutR, Dst: uint32(s.Reg), A: idx})
			}
		case SExit:
			k, idx, imm := src(s.E1)
			switch k {
			case KindConst:
				if imm == 0 {
					// Never taken: drop.
					continue
				}
				// Always taken: an unconditional jump. Statements
				// after it are unreachable; they are still lowered
				// (harmless) to keep indices simple.
				cc.emit(UOp{Code: UJmp, Dst: cc.ic, Imm: s.Target, ChainIdx: cc.newChain()})
			case KindRdTmp:
				cc.emit(UOp{Code: UExitT, A: idx, Dst: cc.ic, Imm: s.Target, ChainIdx: cc.newChain()})
			default:
				cc.emit(UOp{Code: UExitR, A: idx, Dst: cc.ic, Imm: s.Target, ChainIdx: cc.newChain()})
			}
		case SDirty:
			if s.Fn == nil {
				return nil, fmt.Errorf("vex: compile: dirty %q has nil helper", s.Name)
			}
			d := &DirtyOp{Name: s.Name, Fn: s.Fn, Args: make([]CArg, len(s.Args)),
				Meta: s.Meta, InstrsBefore: cc.ic}
			for j, a := range s.Args {
				k, idx, imm := src(a)
				d.Args[j] = CArg{Kind: k, Idx: idx, Imm: imm}
			}
			if s.Tmp != NoTemp {
				d.Tmp = uint32(s.Tmp)
				d.HasTmp = true
			}
			cc.emit(UOp{Code: UDirty, Dirty: d})
		default:
			return nil, fmt.Errorf("vex: compile: unknown statement kind %d", s.Kind)
		}
	}
	// Fall-through edge.
	k, idx, imm := src(sb.Next)
	out.NextKind = k
	out.NextIdx = idx
	out.NextImm = imm
	// Constant successors get a chain site: fall-throughs, direct calls,
	// and host-call/client-request edges (which resume at the call site's
	// static successor — a host that redirects the thread merely misses the
	// re-verified prediction). Returns stay unchained here; they are
	// predicted through the engine's return stack instead.
	if k == KindConst && (sb.NextJK == JKBoring || sb.NextJK == JKCall ||
		sb.NextJK == JKHostCall || sb.NextJK == JKClientReq) {
		out.NextChain = cc.newChain()
	}
	cc.fuse()
	out.NFrame = cc.nframe
	out.NChains = cc.chains
	return out, nil
}

// fuse is the peephole pass: it merges the adjacent micro-op sequences the
// translator produces for single guest instructions — a computation into a
// single-use temp immediately consumed by the next op — into one fused
// micro-op. Runs in place (the output is never longer than the input).
func (cc *compiler) fuse() {
	ops, pcs, ics := cc.out.Ops, cc.out.PCs, cc.out.ICs
	j := 0
	for i := 0; i < len(ops); {
		u := &ops[i]
		var fused UOp
		n := 0 // ops consumed by the match, 0 = no match

		switch {
		case u.Code == UBinRC && u.Op == OpAdd && cc.singleUse(u.Dst):
			// Base+offset address arithmetic feeding a load or store.
			if i+1 < len(ops) && ics[i] == ics[i+1] {
				switch v := &ops[i+1]; v.Code {
				case ULdT:
					if v.A == u.Dst {
						// Full load-to-register triple?
						if i+2 < len(ops) && ics[i] == ics[i+2] {
							if w := &ops[i+2]; w.Code == UPutT && w.A == v.Dst && cc.singleUse(v.Dst) {
								fused = UOp{Code: ULdPRI, Wd: v.Wd, Dst: w.Dst, A: u.A, Imm: u.Imm}
								n = 3
								break
							}
						}
						fused = UOp{Code: ULdTRI, Wd: v.Wd, Dst: v.Dst, A: u.A, Imm: u.Imm}
						n = 2
					}
				case UStTR:
					if v.A == u.Dst {
						fused = UOp{Code: UStRIR, Wd: v.Wd, A: u.A, B: v.B, Imm: u.Imm}
						n = 2
					}
				case UStTT:
					if v.A == u.Dst {
						fused = UOp{Code: UStRIT, Wd: v.Wd, A: u.A, B: v.B, Imm: u.Imm}
						n = 2
					}
				}
			}

		case u.Code == ULdR && i+1 < len(ops) && ics[i] == ics[i+1]:
			// Zero-offset load straight to a register.
			if v := &ops[i+1]; v.Code == UPutT && v.A == u.Dst && cc.singleUse(u.Dst) {
				fused = UOp{Code: ULdPRI, Wd: u.Wd, Dst: v.Dst, A: u.A}
				n = 2
			}
		}

		// Binop/unop whose single-use result feeds a register write or a
		// conditional exit.
		if n == 0 && u.Code >= UBinTT && u.Code <= UBinRR && cc.singleUse(u.Dst) &&
			i+1 < len(ops) && ics[i] == ics[i+1] {
			switch v := &ops[i+1]; {
			case v.Code == UPutT && v.A == u.Dst:
				fused = *u
				fused.Code = UPutBinTT + (u.Code - UBinTT)
				fused.Dst = v.Dst
				n = 2
			case v.Code == UExitT && v.A == u.Dst:
				var ec UCode
				switch u.Code {
				case UBinTT:
					ec = UExitBinTT
				case UBinTR:
					ec = UExitBinTR
				case UBinRT:
					ec = UExitBinRT
				case UBinRR:
					ec = UExitBinRR
				}
				if ec != 0 {
					fused = UOp{Code: ec, A: u.A, B: u.B, Fn: u.Fn, Op: u.Op,
						Dst: v.Dst, Imm: v.Imm, ChainIdx: v.ChainIdx}
					n = 2
				}
			}
		}
		if n == 0 && (u.Code == UUnT || u.Code == UUnR) && cc.singleUse(u.Dst) &&
			i+1 < len(ops) && ics[i] == ics[i+1] {
			if v := &ops[i+1]; v.Code == UPutT && v.A == u.Dst {
				code := UPutUnT
				if u.Code == UUnR {
					code = UPutUnR
				}
				fused = UOp{Code: code, Dst: v.Dst, A: u.A, Fn1: u.Fn1, Op: u.Op}
				n = 2
			}
		}

		if n == 0 {
			ops[j], pcs[j], ics[j] = ops[i], pcs[i], ics[i]
			j++
			i++
			continue
		}
		ops[j], pcs[j], ics[j] = fused, pcs[i], ics[i]
		j++
		i += n
	}
	cc.out.Ops = ops[:j]
	cc.out.PCs = pcs[:j]
	cc.out.ICs = ics[:j]
}

// compileMov lowers t = e.
func (cc *compiler) compileMov(dst uint32, e Expr) {
	k, idx, imm := src(e)
	switch k {
	case KindConst:
		cc.emit(UOp{Code: UMovC, Dst: dst, Imm: imm})
	case KindRdTmp:
		cc.emit(UOp{Code: UMovT, Dst: dst, A: idx})
	default:
		cc.emit(UOp{Code: UMovR, Dst: dst, A: idx})
	}
}

// compileBinop lowers t = op(a, b), folding const⊕const.
func (cc *compiler) compileBinop(s *Stmt) error {
	fn := BinopFn(s.Op)
	if fn == nil || s.Op.IsUnary() {
		return fmt.Errorf("vex: compile: bad binary op %s", s.Op)
	}
	ka, ia, ca := src(s.E1)
	kb, ib, cb := src(s.E2)
	dst := uint32(s.Tmp)
	if ka == KindConst && kb == KindConst {
		cc.emit(UOp{Code: UMovC, Dst: dst, Imm: EvalBinop(s.Op, ca, cb)})
		return nil
	}
	u := UOp{Dst: dst, Fn: fn, A: ia, B: ib, Imm: ca | cb, Op: s.Op}
	switch {
	case ka == KindRdTmp && kb == KindRdTmp:
		u.Code = UBinTT
	case ka == KindRdTmp && kb == KindConst:
		u.Code = UBinTC
	case ka == KindRdTmp && kb == KindGetReg:
		u.Code = UBinTR
	case ka == KindConst && kb == KindRdTmp:
		u.Code = UBinCT
	case ka == KindConst && kb == KindGetReg:
		u.Code = UBinCR
	case ka == KindGetReg && kb == KindRdTmp:
		u.Code = UBinRT
	case ka == KindGetReg && kb == KindConst:
		u.Code = UBinRC
	default: // reg, reg
		u.Code = UBinRR
	}
	cc.emit(u)
	return nil
}

// compileUnop lowers t = op(a), folding const operands.
func (cc *compiler) compileUnop(s *Stmt) error {
	fn := UnopFn(s.Op)
	if fn == nil || !s.Op.IsUnary() {
		return fmt.Errorf("vex: compile: bad unary op %s", s.Op)
	}
	k, idx, imm := src(s.E1)
	dst := uint32(s.Tmp)
	switch k {
	case KindConst:
		cc.emit(UOp{Code: UMovC, Dst: dst, Imm: EvalUnop(s.Op, imm)})
	case KindRdTmp:
		cc.emit(UOp{Code: UUnT, Dst: dst, A: idx, Fn1: fn, Op: s.Op})
	default:
		cc.emit(UOp{Code: UUnR, Dst: dst, A: idx, Fn1: fn, Op: s.Op})
	}
	return nil
}

// compileStore lowers ST(addr) = data. The one combination the fused codes
// cannot carry — both operands constant, two immediates — goes through a
// synthesized scratch temp.
func (cc *compiler) compileStore(s *Stmt) {
	ka, ia, ca := src(s.E1)
	kb, ib, cb := src(s.E2)
	wd := uint8(s.Wd)
	if ka == KindConst && kb == KindConst {
		t := cc.scratch()
		cc.emit(UOp{Code: UMovC, Dst: t, Imm: cb})
		cc.emit(UOp{Code: UStCT, Wd: wd, Imm: ca, B: t})
		return
	}
	u := UOp{Wd: wd, A: ia, B: ib, Imm: ca | cb}
	switch {
	case ka == KindRdTmp && kb == KindRdTmp:
		u.Code = UStTT
	case ka == KindRdTmp && kb == KindConst:
		u.Code = UStTC
	case ka == KindRdTmp && kb == KindGetReg:
		u.Code = UStTR
	case ka == KindConst && kb == KindRdTmp:
		u.Code = UStCT
	case ka == KindConst && kb == KindGetReg:
		u.Code = UStCR
	case ka == KindGetReg && kb == KindRdTmp:
		u.Code = UStRT
	case ka == KindGetReg && kb == KindConst:
		u.Code = UStRC
	default:
		u.Code = UStRR
	}
	cc.emit(u)
}
