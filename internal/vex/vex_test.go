package vex

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestValidateAcceptsWellFormed(t *testing.T) {
	sb := &SuperBlock{GuestAddr: 0x1000}
	sb.IMark(0x1000, 8)
	a := sb.WrTmpExpr(ConstE(7))
	b := sb.WrTmpBinop(OpAdd, TmpE(a), RegE(3))
	sb.Store(W64, TmpE(b), ConstE(42))
	sb.PutReg(2, TmpE(b))
	sb.Exit(TmpE(a), 0x2000, JKBoring)
	sb.Next = ConstE(0x1008)
	if err := sb.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestValidateRejectsReadBeforeWrite(t *testing.T) {
	sb := &SuperBlock{GuestAddr: 0x1000, NTemps: 2}
	sb.Append(Stmt{Kind: SWrTmpExpr, Tmp: 0, E1: TmpE(1)})
	sb.Next = ConstE(0)
	if err := sb.Validate(); err == nil || !strings.Contains(err.Error(), "read before write") {
		t.Fatalf("want read-before-write error, got %v", err)
	}
}

func TestValidateRejectsDoubleWrite(t *testing.T) {
	sb := &SuperBlock{GuestAddr: 0x1000}
	tt := sb.WrTmpExpr(ConstE(1))
	sb.Append(Stmt{Kind: SWrTmpExpr, Tmp: tt, E1: ConstE(2)})
	sb.Next = ConstE(0)
	if err := sb.Validate(); err == nil || !strings.Contains(err.Error(), "written twice") {
		t.Fatalf("want double-write error, got %v", err)
	}
}

func TestValidateRejectsOutOfRangeTemp(t *testing.T) {
	sb := &SuperBlock{GuestAddr: 0x1000}
	sb.Next = TmpE(5)
	if err := sb.Validate(); err == nil {
		t.Fatal("want out-of-range error")
	}
}

func TestValidateRejectsNilDirty(t *testing.T) {
	sb := &SuperBlock{GuestAddr: 0x1000}
	sb.Append(Stmt{Kind: SDirty, Tmp: NoTemp, Name: "x"})
	sb.Next = ConstE(0)
	if err := sb.Validate(); err == nil || !strings.Contains(err.Error(), "nil helper") {
		t.Fatalf("want nil-helper error, got %v", err)
	}
}

func neg(v int64) uint64 { return uint64(-v) }

func TestEvalBinopIntegerLaws(t *testing.T) {
	cases := []struct {
		op   Op
		a, b uint64
		want uint64
	}{
		{OpAdd, 3, 4, 7},
		{OpSub, 3, 4, ^uint64(0)},
		{OpMul, 6, 7, 42},
		{OpDiv, neg(8), 2, neg(4)},
		{OpDiv, 5, 0, 0},
		{OpRem, 7, 0, 0},
		{OpRem, neg(7), 2, neg(1)},
		{OpAnd, 0b1100, 0b1010, 0b1000},
		{OpOr, 0b1100, 0b1010, 0b1110},
		{OpXor, 0b1100, 0b1010, 0b0110},
		{OpShl, 1, 65, 2}, // shift count masked to 6 bits
		{OpShr, 8, 2, 2},
		{OpSar, neg(8), 1, neg(4)},
		{OpCmpEQ, 5, 5, 1},
		{OpCmpNE, 5, 5, 0},
		{OpCmpLT, neg(1), 0, 1},
		{OpCmpLTU, neg(1), 0, 0},
		{OpCmpGE, 0, neg(1), 1},
		{OpCmpGEU, 0, neg(1), 0},
	}
	for _, c := range cases {
		if got := EvalBinop(c.op, c.a, c.b); got != c.want {
			t.Errorf("%s(%d,%d) = %d, want %d", c.op, c.a, c.b, got, c.want)
		}
	}
}

func TestEvalBinopFloat(t *testing.T) {
	a, b := math.Float64bits(1.5), math.Float64bits(2.5)
	if got := math.Float64frombits(EvalBinop(OpFAdd, a, b)); got != 4.0 {
		t.Errorf("FAdd = %g", got)
	}
	if got := math.Float64frombits(EvalBinop(OpFMul, a, b)); got != 3.75 {
		t.Errorf("FMul = %g", got)
	}
	if EvalBinop(OpFCmpLT, a, b) != 1 || EvalBinop(OpFCmpLT, b, a) != 0 {
		t.Error("FCmpLT wrong")
	}
	if EvalBinop(OpFCmpLE, a, a) != 1 {
		t.Error("FCmpLE not reflexive")
	}
	if EvalBinop(OpFCmpEQ, a, a) != 1 {
		t.Error("FCmpEQ not reflexive")
	}
}

func TestEvalUnop(t *testing.T) {
	if EvalUnop(OpNot, 0) != ^uint64(0) {
		t.Error("Not")
	}
	if EvalUnop(OpNeg, 5) != neg(5) {
		t.Error("Neg")
	}
	if math.Float64frombits(EvalUnop(OpItoF, neg(3))) != -3.0 {
		t.Error("ItoF")
	}
	if int64(EvalUnop(OpFtoI, math.Float64bits(-3.9))) != -3 {
		t.Error("FtoI truncation")
	}
}

// Property: Add/Sub and Xor are involutive inverses.
func TestQuickAddSubInverse(t *testing.T) {
	f := func(a, b uint64) bool {
		return EvalBinop(OpSub, EvalBinop(OpAdd, a, b), b) == a &&
			EvalBinop(OpXor, EvalBinop(OpXor, a, b), b) == a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: comparison ops return only 0 or 1 and are mutually exclusive
// with their complements.
func TestQuickCmpComplement(t *testing.T) {
	f := func(a, b uint64) bool {
		eq, ne := EvalBinop(OpCmpEQ, a, b), EvalBinop(OpCmpNE, a, b)
		lt, ge := EvalBinop(OpCmpLT, a, b), EvalBinop(OpCmpGE, a, b)
		ltu, geu := EvalBinop(OpCmpLTU, a, b), EvalBinop(OpCmpGEU, a, b)
		return eq^ne == 1 && lt^ge == 1 && ltu^geu == 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestStringRendering(t *testing.T) {
	sb := &SuperBlock{GuestAddr: 0x1000}
	sb.IMark(0x1000, 8)
	a := sb.WrTmpLoad(W32, ConstE(0x2000))
	sb.Store(W32, ConstE(0x2004), TmpE(a))
	sb.Dirty("trace", func(any, []uint64) uint64 { return 0 }, TmpE(a))
	sb.Next = ConstE(0x1008)
	s := sb.String()
	for _, want := range []string{"IMark(0x1000", "LD32", "ST32", "DIRTY trace"} {
		if !strings.Contains(s, want) {
			t.Errorf("rendering missing %q in:\n%s", want, s)
		}
	}
}

func TestOpStringAndUnary(t *testing.T) {
	if OpAdd.String() != "Add" || OpFCmpEQ.String() != "FCmpEQ" {
		t.Error("op names")
	}
	if !OpNot.IsUnary() || OpAdd.IsUnary() {
		t.Error("IsUnary")
	}
}

func TestF2UandU2FRoundTrip(t *testing.T) {
	for _, v := range []float64{0, 1.5, -2.25, math.Pi, math.Inf(1)} {
		if U2F(F2U(v)) != v {
			t.Errorf("round trip %g", v)
		}
	}
}
