package vex

import "math"

// u2f reinterprets a 64-bit pattern as float64.
func u2f(u uint64) float64 { return math.Float64frombits(u) }

// f2u reinterprets a float64 as its 64-bit pattern.
func f2u(f float64) uint64 { return math.Float64bits(f) }

// F2U exposes the float64 -> bits conversion for other packages that build
// guest constants.
func F2U(f float64) uint64 { return f2u(f) }

// U2F exposes the bits -> float64 conversion.
func U2F(u uint64) float64 { return u2f(u) }
