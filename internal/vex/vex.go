// Package vex defines the intermediate representation (IR) used by the DBI
// framework, modelled after Valgrind's VEX IR.
//
// Guest basic blocks are translated into a SuperBlock: a list of typed,
// flattened statements over an infinite set of temporaries. "Flattened" means
// every operand of a statement or expression is either a constant or a
// temporary; memory loads never nest inside other expressions. Flat IR is what
// makes instrumentation trivial: a tool walks the statement list and inserts
// Dirty (helper-call) statements next to the Load/Store statements it cares
// about, exactly like a Valgrind tool plugin.
package vex

import (
	"fmt"
	"strings"
)

// Temp names an IR temporary (SSA-like virtual register).
type Temp uint32

// Width is an access width in bytes (1, 2, 4 or 8).
type Width uint8

// Valid access widths.
const (
	W8  Width = 1
	W16 Width = 2
	W32 Width = 4
	W64 Width = 8
)

// Op enumerates binary and unary IR operations. All operate on 64-bit
// values; float ops interpret the bits as IEEE-754 float64.
type Op uint8

// Binary and unary operations.
const (
	OpAdd Op = iota
	OpSub
	OpMul
	OpDiv // signed
	OpRem // signed
	OpAnd
	OpOr
	OpXor
	OpShl
	OpShr // logical
	OpSar // arithmetic
	OpCmpEQ
	OpCmpNE
	OpCmpLT // signed
	OpCmpGE // signed
	OpCmpLTU
	OpCmpGEU
	OpFAdd
	OpFSub
	OpFMul
	OpFDiv
	OpFCmpLT
	OpFCmpLE
	OpFCmpEQ
	OpNot  // unary: bitwise not
	OpNeg  // unary: arithmetic negate
	OpItoF // unary: int64 -> float64 bits
	OpFtoI // unary: float64 bits -> int64 (truncate)
)

var opNames = map[Op]string{
	OpAdd: "Add", OpSub: "Sub", OpMul: "Mul", OpDiv: "Div", OpRem: "Rem",
	OpAnd: "And", OpOr: "Or", OpXor: "Xor", OpShl: "Shl", OpShr: "Shr",
	OpSar: "Sar", OpCmpEQ: "CmpEQ", OpCmpNE: "CmpNE", OpCmpLT: "CmpLT",
	OpCmpGE: "CmpGE", OpCmpLTU: "CmpLTU", OpCmpGEU: "CmpGEU",
	OpFAdd: "FAdd", OpFSub: "FSub", OpFMul: "FMul", OpFDiv: "FDiv",
	OpFCmpLT: "FCmpLT", OpFCmpLE: "FCmpLE", OpFCmpEQ: "FCmpEQ",
	OpNot: "Not", OpNeg: "Neg", OpItoF: "ItoF", OpFtoI: "FtoI",
}

// String returns the mnemonic of the operation.
func (o Op) String() string {
	if s, ok := opNames[o]; ok {
		return s
	}
	return fmt.Sprintf("Op(%d)", uint8(o))
}

// IsUnary reports whether the operation takes a single operand.
func (o Op) IsUnary() bool {
	switch o {
	case OpNot, OpNeg, OpItoF, OpFtoI:
		return true
	}
	return false
}

// Expr is a flat IR expression: a constant, a temporary read, or a guest
// register read. Compound expressions (Binop, Load...) appear only on the
// right-hand side of WrTmp statements.
type Expr struct {
	Kind ExprKind
	// Const value (KindConst), temp number (KindRdTmp) or guest register
	// number (KindGetReg).
	Const uint64
	Tmp   Temp
	Reg   uint8
}

// ExprKind discriminates Expr.
type ExprKind uint8

// Expression kinds.
const (
	KindConst ExprKind = iota
	KindRdTmp
	KindGetReg
)

// ConstE builds a constant expression.
func ConstE(v uint64) Expr { return Expr{Kind: KindConst, Const: v} }

// TmpE builds a temporary-read expression.
func TmpE(t Temp) Expr { return Expr{Kind: KindRdTmp, Tmp: t} }

// RegE builds a guest-register-read expression.
func RegE(r uint8) Expr { return Expr{Kind: KindGetReg, Reg: r} }

// String renders the expression.
func (e Expr) String() string {
	switch e.Kind {
	case KindConst:
		return fmt.Sprintf("0x%x", e.Const)
	case KindRdTmp:
		return fmt.Sprintf("t%d", e.Tmp)
	case KindGetReg:
		return fmt.Sprintf("GET(r%d)", e.Reg)
	}
	return "?"
}

// StmtKind discriminates Stmt.
type StmtKind uint8

// Statement kinds.
const (
	// SIMark marks the start of a translated guest instruction.
	SIMark StmtKind = iota
	// SWrTmpExpr assigns a flat expression to a temp: t = e.
	SWrTmpExpr
	// SWrTmpBinop assigns a binary operation to a temp: t = op(a, b).
	SWrTmpBinop
	// SWrTmpUnop assigns a unary operation to a temp: t = op(a).
	SWrTmpUnop
	// SWrTmpLoad assigns a memory load to a temp: t = LD<w>(addr).
	SWrTmpLoad
	// SStore writes memory: ST<w>(addr) = data.
	SStore
	// SPutReg writes a guest register: r = e.
	SPutReg
	// SExit conditionally leaves the block: if (guard) goto Target.
	SExit
	// SDirty calls a helper function with arbitrary side effects. Tools
	// inject these for instrumentation; the translator emits them for
	// host calls and client requests.
	SDirty
)

// Stmt is one flattened IR statement.
type Stmt struct {
	Kind StmtKind

	// SIMark: guest address and length of the instruction.
	Addr uint64
	Len  uint8

	// Destination temp for SWrTmp*.
	Tmp Temp

	// Operands. SWrTmpExpr uses E1. SWrTmpBinop uses Op, E1, E2.
	// SWrTmpUnop uses Op, E1. SWrTmpLoad uses Wd, E1 (address).
	// SStore uses Wd, E1 (address), E2 (data). SPutReg uses Reg, E1.
	// SExit uses E1 (guard), Target. SDirty uses Fn, Args, and Tmp as
	// the optional result temp (NoTemp when unused).
	Op     Op
	Wd     Width
	E1, E2 Expr
	Reg    uint8

	// SExit: absolute guest target address and jump kind.
	Target uint64
	JK     JumpKind

	// SDirty: helper index into the machine's dirty-helper table plus
	// argument expressions. Meta carries the helper's serializable
	// parameters: a closure bound to one core cannot cross core or process
	// boundaries, but (Name, Meta, Args) can, letting an adopting core
	// rebind an equivalent helper of its own (see the translation store).
	Fn   DirtyFn
	Name string
	Args []Expr
	Meta []uint64
}

// NoTemp marks an unused result temp on a Dirty statement.
const NoTemp Temp = ^Temp(0)

// DirtyFn is a helper called from IR execution. The ctx argument is the
// executing thread (opaque here to avoid an import cycle; the dbi package
// asserts it back). It returns a value stored into the statement's result
// temp, if any.
type DirtyFn func(ctx any, args []uint64) uint64

// JumpKind classifies how a block (or Exit) transfers control, mirroring
// VEX's IRJumpKind.
type JumpKind uint8

// Jump kinds.
const (
	JKBoring JumpKind = iota
	JKCall
	JKRet
	JKClientReq
	JKHostCall
	JKExitThread
)

// String renders the jump kind.
func (j JumpKind) String() string {
	switch j {
	case JKBoring:
		return "Boring"
	case JKCall:
		return "Call"
	case JKRet:
		return "Ret"
	case JKClientReq:
		return "ClientReq"
	case JKHostCall:
		return "HostCall"
	case JKExitThread:
		return "ExitThread"
	}
	return "?"
}

// SuperBlock is a single-entry, multiple-exit translation unit: the IR for
// one guest basic block, possibly extended with tool instrumentation.
type SuperBlock struct {
	// GuestAddr is the guest address of the first instruction.
	GuestAddr uint64
	// Stmts is the flattened statement list.
	Stmts []Stmt
	// NTemps is the number of temporaries used; temps are 0..NTemps-1.
	NTemps uint32
	// Next is the fall-through successor once the statement list is
	// exhausted (evaluated as an expression: constant or temp).
	Next Expr
	// NextJK is the jump kind of the fall-through edge.
	NextJK JumpKind
	// Aux carries the host-call number (JKHostCall) or client-request code
	// (JKClientReq) of the block-ending instruction.
	Aux int32
}

// NewTemp allocates a fresh temporary.
func (sb *SuperBlock) NewTemp() Temp {
	t := Temp(sb.NTemps)
	sb.NTemps++
	return t
}

// Append adds a statement.
func (sb *SuperBlock) Append(s Stmt) { sb.Stmts = append(sb.Stmts, s) }

// IMark appends an instruction marker.
func (sb *SuperBlock) IMark(addr uint64, length uint8) {
	sb.Append(Stmt{Kind: SIMark, Addr: addr, Len: length})
}

// WrTmpExpr appends t = e and returns t.
func (sb *SuperBlock) WrTmpExpr(e Expr) Temp {
	t := sb.NewTemp()
	sb.Append(Stmt{Kind: SWrTmpExpr, Tmp: t, E1: e})
	return t
}

// WrTmpBinop appends t = op(a, b) and returns t.
func (sb *SuperBlock) WrTmpBinop(op Op, a, b Expr) Temp {
	t := sb.NewTemp()
	sb.Append(Stmt{Kind: SWrTmpBinop, Tmp: t, Op: op, E1: a, E2: b})
	return t
}

// WrTmpUnop appends t = op(a) and returns t.
func (sb *SuperBlock) WrTmpUnop(op Op, a Expr) Temp {
	t := sb.NewTemp()
	sb.Append(Stmt{Kind: SWrTmpUnop, Tmp: t, Op: op, E1: a})
	return t
}

// WrTmpLoad appends t = LD<w>(addr) and returns t.
func (sb *SuperBlock) WrTmpLoad(w Width, addr Expr) Temp {
	t := sb.NewTemp()
	sb.Append(Stmt{Kind: SWrTmpLoad, Tmp: t, Wd: w, E1: addr})
	return t
}

// Store appends ST<w>(addr) = data.
func (sb *SuperBlock) Store(w Width, addr, data Expr) {
	sb.Append(Stmt{Kind: SStore, Wd: w, E1: addr, E2: data})
}

// PutReg appends r = e.
func (sb *SuperBlock) PutReg(r uint8, e Expr) {
	sb.Append(Stmt{Kind: SPutReg, Reg: r, E1: e})
}

// Exit appends a conditional exit: if (guard != 0) goto target.
func (sb *SuperBlock) Exit(guard Expr, target uint64, jk JumpKind) {
	sb.Append(Stmt{Kind: SExit, E1: guard, Target: target, JK: jk})
}

// Dirty appends a helper call with no result.
func (sb *SuperBlock) Dirty(name string, fn DirtyFn, args ...Expr) {
	sb.Append(Stmt{Kind: SDirty, Tmp: NoTemp, Name: name, Fn: fn, Args: args})
}

// DirtyTmp appends a helper call whose result is stored in a fresh temp.
func (sb *SuperBlock) DirtyTmp(name string, fn DirtyFn, args ...Expr) Temp {
	t := sb.NewTemp()
	sb.Append(Stmt{Kind: SDirty, Tmp: t, Name: name, Fn: fn, Args: args})
	return t
}

// String renders a statement in VEX-like syntax.
func (s Stmt) String() string {
	switch s.Kind {
	case SIMark:
		return fmt.Sprintf("------ IMark(0x%x, %d) ------", s.Addr, s.Len)
	case SWrTmpExpr:
		return fmt.Sprintf("t%d = %s", s.Tmp, s.E1)
	case SWrTmpBinop:
		return fmt.Sprintf("t%d = %s(%s,%s)", s.Tmp, s.Op, s.E1, s.E2)
	case SWrTmpUnop:
		return fmt.Sprintf("t%d = %s(%s)", s.Tmp, s.Op, s.E1)
	case SWrTmpLoad:
		return fmt.Sprintf("t%d = LD%d(%s)", s.Tmp, s.Wd*8, s.E1)
	case SStore:
		return fmt.Sprintf("ST%d(%s) = %s", s.Wd*8, s.E1, s.E2)
	case SPutReg:
		return fmt.Sprintf("PUT(r%d) = %s", s.Reg, s.E1)
	case SExit:
		return fmt.Sprintf("if (%s) goto {%s} 0x%x", s.E1, s.JK, s.Target)
	case SDirty:
		var b strings.Builder
		if s.Tmp != NoTemp {
			fmt.Fprintf(&b, "t%d = ", s.Tmp)
		}
		fmt.Fprintf(&b, "DIRTY %s(", s.Name)
		for i, a := range s.Args {
			if i > 0 {
				b.WriteString(",")
			}
			b.WriteString(a.String())
		}
		b.WriteString(")")
		return b.String()
	}
	return "?stmt"
}

// String renders the whole superblock.
func (sb *SuperBlock) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "IRSB@0x%x {\n", sb.GuestAddr)
	for _, s := range sb.Stmts {
		fmt.Fprintf(&b, "   %s\n", s)
	}
	fmt.Fprintf(&b, "   goto {%s} %s\n}\n", sb.NextJK, sb.Next)
	return b.String()
}

// Validate checks IR well-formedness: temps are written before read, written
// exactly once, and all temp references are in range. Tools run this after
// instrumentation in debug builds.
func (sb *SuperBlock) Validate() error {
	written := make([]bool, sb.NTemps)
	checkRead := func(e Expr) error {
		if e.Kind == KindRdTmp {
			if uint32(e.Tmp) >= sb.NTemps {
				return fmt.Errorf("vex: temp t%d out of range (%d temps)", e.Tmp, sb.NTemps)
			}
			if !written[e.Tmp] {
				return fmt.Errorf("vex: temp t%d read before write", e.Tmp)
			}
		}
		return nil
	}
	checkWrite := func(t Temp) error {
		if uint32(t) >= sb.NTemps {
			return fmt.Errorf("vex: temp t%d out of range (%d temps)", t, sb.NTemps)
		}
		if written[t] {
			return fmt.Errorf("vex: temp t%d written twice", t)
		}
		written[t] = true
		return nil
	}
	for i, s := range sb.Stmts {
		var err error
		switch s.Kind {
		case SIMark:
		case SWrTmpExpr:
			if err = checkRead(s.E1); err == nil {
				err = checkWrite(s.Tmp)
			}
		case SWrTmpBinop:
			if err = checkRead(s.E1); err == nil {
				if err = checkRead(s.E2); err == nil {
					err = checkWrite(s.Tmp)
				}
			}
		case SWrTmpUnop:
			if err = checkRead(s.E1); err == nil {
				err = checkWrite(s.Tmp)
			}
		case SWrTmpLoad:
			if err = checkRead(s.E1); err == nil {
				err = checkWrite(s.Tmp)
			}
		case SStore:
			if err = checkRead(s.E1); err == nil {
				err = checkRead(s.E2)
			}
		case SPutReg:
			err = checkRead(s.E1)
		case SExit:
			err = checkRead(s.E1)
		case SDirty:
			for _, a := range s.Args {
				if err = checkRead(a); err != nil {
					break
				}
			}
			if err == nil && s.Tmp != NoTemp {
				err = checkWrite(s.Tmp)
			}
			if err == nil && s.Fn == nil {
				err = fmt.Errorf("vex: dirty %q has nil helper", s.Name)
			}
		default:
			err = fmt.Errorf("vex: unknown statement kind %d", s.Kind)
		}
		if err != nil {
			return fmt.Errorf("stmt %d (%s): %w", i, s, err)
		}
	}
	return checkRead(sb.Next)
}

// EvalBinop computes a binary operation on 64-bit values, with float ops
// interpreting operands as float64 bit patterns. Shared by the IR executor
// and the direct interpreter so both agree on semantics.
func EvalBinop(op Op, a, b uint64) uint64 {
	switch op {
	case OpAdd:
		return a + b
	case OpSub:
		return a - b
	case OpMul:
		return a * b
	case OpDiv:
		if b == 0 {
			return 0
		}
		return uint64(int64(a) / int64(b))
	case OpRem:
		if b == 0 {
			return 0
		}
		return uint64(int64(a) % int64(b))
	case OpAnd:
		return a & b
	case OpOr:
		return a | b
	case OpXor:
		return a ^ b
	case OpShl:
		return a << (b & 63)
	case OpShr:
		return a >> (b & 63)
	case OpSar:
		return uint64(int64(a) >> (b & 63))
	case OpCmpEQ:
		return b2u(a == b)
	case OpCmpNE:
		return b2u(a != b)
	case OpCmpLT:
		return b2u(int64(a) < int64(b))
	case OpCmpGE:
		return b2u(int64(a) >= int64(b))
	case OpCmpLTU:
		return b2u(a < b)
	case OpCmpGEU:
		return b2u(a >= b)
	case OpFAdd:
		return f2u(u2f(a) + u2f(b))
	case OpFSub:
		return f2u(u2f(a) - u2f(b))
	case OpFMul:
		return f2u(u2f(a) * u2f(b))
	case OpFDiv:
		return f2u(u2f(a) / u2f(b))
	case OpFCmpLT:
		return b2u(u2f(a) < u2f(b))
	case OpFCmpLE:
		return b2u(u2f(a) <= u2f(b))
	case OpFCmpEQ:
		return b2u(u2f(a) == u2f(b))
	}
	panic(fmt.Sprintf("vex: EvalBinop on non-binary op %s", op))
}

// EvalUnop computes a unary operation.
func EvalUnop(op Op, a uint64) uint64 {
	switch op {
	case OpNot:
		return ^a
	case OpNeg:
		return -a
	case OpItoF:
		return f2u(float64(int64(a)))
	case OpFtoI:
		return uint64(int64(u2f(a)))
	}
	panic(fmt.Sprintf("vex: EvalUnop on non-unary op %s", op))
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}
