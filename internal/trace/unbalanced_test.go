package trace_test

import (
	"testing"

	"repro/internal/gbuild"
	"repro/internal/guest"
	"repro/internal/harness"
	"repro/internal/obs"
	"repro/internal/omp"
	"repro/internal/ompt"
	"repro/internal/trace"
	"repro/internal/vm"
)

func trivialProgram() *gbuild.Builder {
	b := omp.NewProgram()
	f := b.Func("main", "t.c")
	f.Ldi(guest.R0, 0)
	f.Hlt(guest.R0)
	return b
}

func TestUnbalancedTaskEndCounted(t *testing.T) {
	rec := trace.New()
	th := &vm.Thread{ID: 0}
	// An end with no matching begin must not be silently dropped.
	rec.ClientRequest(th, ompt.CRTaskEnd, [6]uint64{42})
	if rec.Unbalanced != 1 {
		t.Fatalf("Unbalanced = %d, want 1", rec.Unbalanced)
	}
	if len(rec.Spans) != 0 {
		t.Fatalf("phantom span recorded: %+v", rec.Spans)
	}
	// A balanced begin/end still works after the anomaly.
	rec.ClientRequest(th, ompt.CRTaskBegin, [6]uint64{7})
	rec.ClientRequest(th, ompt.CRTaskEnd, [6]uint64{7})
	if len(rec.Spans) != 1 || rec.Spans[0].TaskID != 7 {
		t.Fatalf("spans = %+v", rec.Spans)
	}
	if rec.Unbalanced != 1 {
		t.Fatalf("Unbalanced drifted to %d", rec.Unbalanced)
	}
}

func TestUnbalancedTaskEndDiagnostic(t *testing.T) {
	rec := trace.New()
	ring := obs.NewRingSink(64)
	tr := obs.NewTracer(ring)
	res, inst, err := harness.BuildAndRun(trivialProgram(), harness.Setup{
		Tool: rec, Obs: &obs.Hooks{Tracer: tr},
	})
	if err != nil || res.Err != nil {
		t.Fatal(err, res.Err)
	}
	// Simulate a runtime bug: an end event with no open span.
	rec.ClientRequest(inst.M.Threads()[0], ompt.CRImplicitEnd, [6]uint64{9})
	if rec.Unbalanced != 1 {
		t.Fatalf("Unbalanced = %d, want 1", rec.Unbalanced)
	}
	if tr.Diagnostics() != 1 {
		t.Fatalf("Diagnostics = %d, want 1", tr.Diagnostics())
	}
	found := false
	for _, ev := range ring.Events() {
		if ev.Cat == "diag" && ev.Name == "unbalanced_task_end" {
			found = true
		}
	}
	if !found {
		t.Fatal("diagnostic event not emitted to sink")
	}
}
