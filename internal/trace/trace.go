// Package trace records an execution timeline — which thread ran which
// task when, in scheduler-slice time — and renders it as a text Gantt
// chart. It subscribes to the same OMPT event stream the analysis tools
// consume, so it composes with any of them (the tool multiplexer Tee keeps
// the plugin slot free for an analyzer).
//
// This is debugging/tooling for the "parallel programming assistant"
// direction of the paper's conclusion: seeing the schedule that produced a
// report makes the report actionable.
package trace

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/dbi"
	"repro/internal/obs"
	"repro/internal/ompt"
	"repro/internal/vex"
	"repro/internal/vm"
)

// Span is one executed task interval on a thread, in block-count time.
type Span struct {
	Thread int
	TaskID uint64
	Label  string
	// Start and End are machine block counts.
	Start, End uint64
}

// Recorder is a dbi.Tool that records task execution spans.
type Recorder struct {
	dbi.NopTool
	c *dbi.Core

	open  map[int][]*Span // per-thread stack of open spans
	Spans []Span
	names map[uint64]string

	// Unbalanced counts task/implicit end events that arrived with no open
	// span on the thread. A correct runtime never produces these; the count
	// (and the tracer diagnostic emitted per occurrence) surfaces a stream
	// bug instead of silently dropping the end.
	Unbalanced uint64
}

// New creates a Recorder.
func New() *Recorder {
	return &Recorder{
		open:  make(map[int][]*Span),
		names: make(map[uint64]string),
	}
}

// Name implements dbi.Tool.
func (r *Recorder) Name() string { return "trace" }

// Attach implements dbi.Attacher.
func (r *Recorder) Attach(c *dbi.Core) { r.c = c }

// Instrument implements dbi.Tool (no access instrumentation needed).
func (r *Recorder) Instrument(_ *dbi.Core, sb *vex.SuperBlock) *vex.SuperBlock { return sb }

// now returns the machine's block clock.
func (r *Recorder) now() uint64 {
	if r.c == nil {
		return 0
	}
	return r.c.M.BlocksExecuted
}

// ClientRequest consumes the OMPT stream.
func (r *Recorder) ClientRequest(t *vm.Thread, code int32, args [6]uint64) uint64 {
	switch code {
	case ompt.CRTaskCreate:
		if r.c != nil {
			if file, line := r.c.M.Image.LineFor(args[3]); file != "" {
				r.names[args[0]] = fmt.Sprintf("%s:%d", file, line)
			} else if sym := r.c.M.Image.SymbolFor(args[3]); sym != nil {
				r.names[args[0]] = sym.Name
			}
		}
	case ompt.CRTaskBegin, ompt.CRImplicitBegin:
		id := args[0]
		label := r.names[id]
		if code == ompt.CRImplicitBegin {
			id = args[1]
			label = "implicit"
		}
		s := &Span{Thread: t.ID, TaskID: id, Label: label, Start: r.now()}
		r.open[t.ID] = append(r.open[t.ID], s)
	case ompt.CRTaskEnd, ompt.CRImplicitEnd:
		stack := r.open[t.ID]
		n := len(stack)
		if n == 0 {
			// An end with no matching begin means the event stream is
			// unbalanced — record the anomaly instead of dropping it.
			r.Unbalanced++
			if c := r.c; c != nil {
				if h := c.Obs; h != nil && h.Tracer != nil {
					h.Tracer.Diagnostic(r.now(), t.ID, "unbalanced_task_end",
						map[string]any{"task": args[0], "code": code})
				}
			}
			break
		}
		s := stack[n-1]
		r.open[t.ID] = stack[:n-1]
		s.End = r.now()
		r.Spans = append(r.Spans, *s)
	}
	return 1
}

// Fini closes dangling spans.
func (r *Recorder) Fini(c *dbi.Core) {
	for tid, stack := range r.open {
		for _, s := range stack {
			s.End = r.now()
			r.Spans = append(r.Spans, *s)
		}
		delete(r.open, tid)
	}
	sort.Slice(r.Spans, func(i, j int) bool {
		if r.Spans[i].Thread != r.Spans[j].Thread {
			return r.Spans[i].Thread < r.Spans[j].Thread
		}
		return r.Spans[i].Start < r.Spans[j].Start
	})
}

// Gantt renders the recorder's timeline (see the package-level Gantt).
func (r *Recorder) Gantt(w io.Writer, width int) error {
	return Gantt(w, r.Spans, width)
}

// Gantt renders a task timeline: one row per thread, columns are block-time
// buckets, letters identify tasks. spans may come from a live Recorder or
// from a recorded run store.
func Gantt(w io.Writer, spans []Span, width int) error {
	if len(spans) == 0 {
		_, err := fmt.Fprintln(w, "(no task spans recorded)")
		return err
	}
	if width <= 0 {
		width = 72
	}
	var maxEnd uint64
	maxThread := 0
	ids := map[uint64]int{}
	for _, s := range spans {
		if s.End > maxEnd {
			maxEnd = s.End
		}
		if s.Thread > maxThread {
			maxThread = s.Thread
		}
		if _, ok := ids[s.TaskID]; !ok {
			ids[s.TaskID] = len(ids)
		}
	}
	if maxEnd == 0 {
		maxEnd = 1
	}
	glyph := func(task uint64) byte {
		const alphabet = "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789"
		return alphabet[ids[task]%len(alphabet)]
	}
	for tid := 0; tid <= maxThread; tid++ {
		row := bytesRepeat('.', width)
		for _, s := range spans {
			if s.Thread != tid {
				continue
			}
			lo := int(s.Start * uint64(width) / maxEnd)
			hi := int(s.End * uint64(width) / maxEnd)
			if hi <= lo {
				hi = lo + 1
			}
			for i := lo; i < hi && i < width; i++ {
				row[i] = glyph(s.TaskID)
			}
		}
		if _, err := fmt.Fprintf(w, "thr %d |%s|\n", tid, row); err != nil {
			return err
		}
	}
	// Legend.
	type ent struct {
		id    uint64
		label string
	}
	var legend []ent
	seen := map[uint64]bool{}
	for _, s := range spans {
		if !seen[s.TaskID] && s.Label != "" && s.Label != "implicit" {
			seen[s.TaskID] = true
			legend = append(legend, ent{s.TaskID, s.Label})
		}
	}
	sort.Slice(legend, func(i, j int) bool { return ids[legend[i].id] < ids[legend[j].id] })
	var parts []string
	for _, e := range legend {
		parts = append(parts, fmt.Sprintf("%c=%s", glyph(e.id), e.label))
	}
	if len(parts) > 0 {
		if _, err := fmt.Fprintln(w, "      ", strings.Join(parts, " ")); err != nil {
			return err
		}
	}
	return nil
}

func bytesRepeat(b byte, n int) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i] = b
	}
	return out
}

// Tee multiplexes the OMPT/client-request stream and instrumentation across
// two tools (e.g. Taskgrind + a Recorder).
type Tee struct {
	A, B dbi.Tool
}

// Name implements dbi.Tool.
func (t Tee) Name() string { return t.A.Name() + "+" + t.B.Name() }

// Instrument chains both tools' instrumentation.
func (t Tee) Instrument(c *dbi.Core, sb *vex.SuperBlock) *vex.SuperBlock {
	return t.B.Instrument(c, t.A.Instrument(c, sb))
}

// ClientRequest delivers to both; A's result wins.
func (t Tee) ClientRequest(th *vm.Thread, code int32, args [6]uint64) uint64 {
	r := t.A.ClientRequest(th, code, args)
	t.B.ClientRequest(th, code, args)
	return r
}

// ThreadStart implements dbi.Tool.
func (t Tee) ThreadStart(th *vm.Thread) {
	t.A.ThreadStart(th)
	t.B.ThreadStart(th)
}

// ThreadExit implements dbi.Tool.
func (t Tee) ThreadExit(th *vm.Thread) {
	t.A.ThreadExit(th)
	t.B.ThreadExit(th)
}

// Fini implements dbi.Tool.
func (t Tee) Fini(c *dbi.Core) {
	t.A.Fini(c)
	t.B.Fini(c)
}

// Attach implements dbi.Attacher for whichever members want it.
func (t Tee) Attach(c *dbi.Core) {
	if a, ok := t.A.(dbi.Attacher); ok {
		a.Attach(c)
	}
	if b, ok := t.B.(dbi.Attacher); ok {
		b.Attach(c)
	}
}

// PublishMetrics forwards to whichever members are metric sources.
func (t Tee) PublishMetrics(reg *obs.Registry) {
	if a, ok := t.A.(obs.MetricSource); ok {
		a.PublishMetrics(reg)
	}
	if b, ok := t.B.(obs.MetricSource); ok {
		b.PublishMetrics(reg)
	}
}
