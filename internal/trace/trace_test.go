package trace_test

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/gbuild"
	"repro/internal/guest"
	"repro/internal/harness"
	"repro/internal/omp"
	"repro/internal/trace"
)

const (
	r0 = guest.R0
	r1 = guest.R1
	r2 = guest.R2
)

// taskProgram: two labelled tasks.
func taskProgram() *gbuild.Builder {
	b := omp.NewProgram()
	b.Global("g", 16)
	for i, name := range []string{"alpha", "beta"} {
		f := b.Func(name, "tr.c")
		f.Line(10 + i)
		f.Enter(16)
		// Busy loop so spans have width.
		f.Ldi(r1, 0)
		f.StLocal(8, 8, r1)
		loop := f.NewLabel()
		f.Bind(loop)
		f.LdLocal(8, r1, 8)
		f.Addi(r1, r1, 1)
		f.StLocal(8, 8, r1)
		f.Ldi(r2, 20)
		f.Blt(r1, r2, loop)
		f.Leave()
	}
	f := b.Func("micro", "tr.c")
	f.Enter(0)
	fn := f
	omp.SingleNowait(f, func() {
		omp.EmitTask(fn, omp.TaskOpts{Fn: "alpha"})
		omp.EmitTask(fn, omp.TaskOpts{Fn: "beta"})
		omp.Taskwait(fn)
	})
	f.Leave()
	f = b.Func("main", "tr.c")
	f.Enter(0)
	f.Ldi(r1, 0)
	omp.Parallel(f, "micro", r1, 4)
	f.Ldi(r0, 0)
	f.Hlt(r0)
	return b
}

func TestRecorderCapturesSpans(t *testing.T) {
	rec := trace.New()
	res, _, err := harness.BuildAndRun(taskProgram(), harness.Setup{Tool: rec, Seed: 2, Threads: 4})
	if err != nil || res.Err != nil {
		t.Fatal(err, res.Err)
	}
	var explicit int
	for _, s := range rec.Spans {
		if s.End < s.Start {
			t.Fatalf("inverted span %+v", s)
		}
		if s.Label != "implicit" && s.Label != "" {
			explicit++
		}
	}
	if explicit != 2 {
		t.Fatalf("explicit task spans = %d, want 2 (%+v)", explicit, rec.Spans)
	}
	var buf bytes.Buffer
	if err := rec.Gantt(&buf, 60); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "thr 0 |") || !strings.Contains(out, "tr.c:1") {
		t.Fatalf("gantt:\n%s", out)
	}
}

// TestTeeComposesWithTaskgrind: trace + taskgrind in one run.
func TestTeeComposesWithTaskgrind(t *testing.T) {
	tg := core.New(core.DefaultOptions())
	rec := trace.New()
	tee := trace.Tee{A: tg, B: rec}
	res, _, err := harness.BuildAndRun(taskProgram(), harness.Setup{Tool: tee, Seed: 2, Threads: 4})
	if err != nil || res.Err != nil {
		t.Fatal(err, res.Err)
	}
	if len(rec.Spans) == 0 {
		t.Fatal("tee lost the recorder's events")
	}
	// The analyzer worked too (clean program).
	if tg.RaceCount != 0 {
		t.Fatalf("tee perturbed the analysis: %d races", tg.RaceCount)
	}
	if tg.Stats.AccessesRecorded == 0 {
		t.Fatal("tee lost the analyzer's instrumentation")
	}
}

func TestEmptyGantt(t *testing.T) {
	rec := trace.New()
	var buf bytes.Buffer
	if err := rec.Gantt(&buf, 40); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "no task spans") {
		t.Fatalf("empty gantt: %q", buf.String())
	}
}
