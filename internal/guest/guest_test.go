package guest

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	f := func(op uint8, rd, rs1, rs2 uint8, imm int32) bool {
		in := Instr{
			Op:  Opcode(op % uint8(numOpcodes)),
			Rd:  rd % NumRegs,
			Rs1: rs1 % NumRegs,
			Rs2: rs2 % NumRegs,
			Imm: imm,
		}
		return Decode(in.Encode()) == in
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestValid(t *testing.T) {
	if !(Instr{Op: OpAdd, Rd: 1, Rs1: 2, Rs2: 3}).Valid() {
		t.Error("valid add rejected")
	}
	if (Instr{Op: numOpcodes}).Valid() {
		t.Error("bad opcode accepted")
	}
	if (Instr{Op: OpAdd, Rd: NumRegs}).Valid() {
		t.Error("bad register accepted")
	}
}

func TestBlockEndAndMemClassification(t *testing.T) {
	ends := []Opcode{OpJmp, OpBeq, OpBne, OpBlt, OpBge, OpBltu, OpBgeu, OpJal, OpJalr, OpRet, OpHcall, OpCreq, OpHlt}
	for _, op := range ends {
		if !(Instr{Op: op}).IsBlockEnd() {
			t.Errorf("%s should end a block", op)
		}
	}
	for _, op := range []Opcode{OpNop, OpAdd, OpLd64, OpSt8} {
		if (Instr{Op: op}).IsBlockEnd() {
			t.Errorf("%s should not end a block", op)
		}
	}
	if (Instr{Op: OpLd16}).MemWidth() != 2 || (Instr{Op: OpSt64}).MemWidth() != 8 {
		t.Error("MemWidth wrong")
	}
	if (Instr{Op: OpAdd}).MemWidth() != 0 {
		t.Error("non-mem width should be 0")
	}
	if !(Instr{Op: OpLd8}).IsLoad() || (Instr{Op: OpSt8}).IsLoad() {
		t.Error("IsLoad wrong")
	}
	if !(Instr{Op: OpSt32}).IsStore() || (Instr{Op: OpLd32}).IsStore() {
		t.Error("IsStore wrong")
	}
}

func TestDisassemblyStrings(t *testing.T) {
	cases := []struct {
		in   Instr
		want string
	}{
		{Instr{Op: OpLdi, Rd: 3, Imm: -7}, "ldi r3, -7"},
		{Instr{Op: OpAdd, Rd: 1, Rs1: 2, Rs2: 3}, "add r1, r2, r3"},
		{Instr{Op: OpLd32, Rd: 0, Rs1: SP, Imm: 8}, "ld32 r0, [sp+8]"},
		{Instr{Op: OpSt64, Rs1: FP, Rs2: 5, Imm: -16}, "st64 [fp-16], r5"},
		{Instr{Op: OpJal, Imm: 0x2000}, "jal 0x2000"},
		{Instr{Op: OpRet}, "ret"},
		{Instr{Op: OpHcall, Imm: 3}, "hcall #3"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}

func mkImage(t *testing.T) *Image {
	t.Helper()
	im := &Image{
		Text: []uint64{
			Instr{Op: OpLdi, Rd: 0, Imm: 0}.Encode(),
			Instr{Op: OpHlt}.Encode(),
			Instr{Op: OpRet}.Encode(),
		},
		Entry: TextBase,
		Symbols: []Symbol{
			{Name: "main", Addr: TextBase, Size: 16, Kind: SymFunc},
			{Name: "helper", Addr: TextBase + 16, Size: 8, Kind: SymFunc},
			{Name: "g", Addr: DataBase, Size: 8, Kind: SymObject},
		},
		Lines: []LineEntry{
			{Addr: TextBase, Len: 16, File: "a.c", Line: 3},
			{Addr: TextBase + 16, Len: 8, File: "a.c", Line: 9},
		},
	}
	if err := im.Freeze(); err != nil {
		t.Fatal(err)
	}
	return im
}

func TestImageLookups(t *testing.T) {
	im := mkImage(t)
	if s := im.SymbolFor(TextBase + 8); s == nil || s.Name != "main" {
		t.Errorf("SymbolFor mid-main = %v", s)
	}
	if s := im.SymbolFor(TextBase + 16); s == nil || s.Name != "helper" {
		t.Errorf("SymbolFor helper = %v", s)
	}
	if s := im.SymbolFor(0x999999); s != nil {
		t.Errorf("SymbolFor nowhere = %v", s)
	}
	if s := im.SymbolByName("g"); s == nil || s.Addr != DataBase {
		t.Error("SymbolByName g")
	}
	if f, l := im.LineFor(TextBase + 8); f != "a.c" || l != 3 {
		t.Errorf("LineFor = %s:%d", f, l)
	}
	if loc := im.Locate(TextBase + 16); !strings.Contains(loc, "helper") || !strings.Contains(loc, "a.c:9") {
		t.Errorf("Locate = %q", loc)
	}
}

func TestFreezeRejectsBadEntry(t *testing.T) {
	im := &Image{Text: []uint64{Instr{Op: OpHlt}.Encode()}, Entry: 0}
	if err := im.Freeze(); err == nil {
		t.Fatal("want bad-entry error")
	}
}

func TestFreezeRejectsInvalidInstruction(t *testing.T) {
	im := &Image{Text: []uint64{^uint64(0)}, Entry: TextBase}
	if err := im.Freeze(); err == nil {
		t.Fatal("want invalid-instruction error")
	}
}

func TestFetchInstr(t *testing.T) {
	im := mkImage(t)
	if _, err := im.FetchInstr(TextBase + 3); err == nil {
		t.Error("misaligned fetch accepted")
	}
	if _, err := im.FetchInstr(im.TextEnd()); err == nil {
		t.Error("out-of-range fetch accepted")
	}
	in, err := im.FetchInstr(TextBase)
	if err != nil || in.Op != OpLdi {
		t.Errorf("fetch = %v, %v", in, err)
	}
}

func TestDisassembleRange(t *testing.T) {
	im := mkImage(t)
	d := im.Disassemble(0, 0)
	if !strings.Contains(d, "<main>") || !strings.Contains(d, "hlt") {
		t.Errorf("disassembly:\n%s", d)
	}
}
