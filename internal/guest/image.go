package guest

import (
	"fmt"
	"sort"
)

// Canonical address-space layout. Addresses are 32-bit values carried in
// 64-bit registers.
const (
	// TextBase is where program text is loaded.
	TextBase uint64 = 0x0000_1000
	// DataBase is where initialized globals are loaded.
	DataBase uint64 = 0x0100_0000
	// HeapBase is the bottom of the guest heap.
	HeapBase uint64 = 0x0800_0000
	// HeapLimit is the top of the guest heap.
	HeapLimit uint64 = 0x5000_0000
	// FastPoolBase is the bottom of the runtime's internal allocation pool
	// (the __kmp_fast_allocate arena: task and region descriptors).
	FastPoolBase uint64 = 0x5000_0000
	// FastPoolLimit is the top of the runtime pool.
	FastPoolLimit uint64 = 0x5800_0000
	// TLSBase is the region where per-thread TLS blocks are carved.
	TLSBase uint64 = 0x6000_0000
	// TLSLimit bounds the TLS region.
	TLSLimit uint64 = 0x6800_0000
	// StackRegionTop is the top of the stack region; thread stacks are
	// carved downward from here.
	StackRegionTop uint64 = 0x7fff_f000
	// StackSize is the default per-thread stack size.
	StackSize uint64 = 1 << 20
)

// SymKind classifies symbols.
type SymKind uint8

// Symbol kinds.
const (
	SymFunc SymKind = iota
	SymObject
)

// Symbol is one entry of the image symbol table.
type Symbol struct {
	Name string
	Addr uint64
	Size uint64
	Kind SymKind
}

// LineEntry maps a guest text address to a source location, standing in for
// DWARF line info. Entries cover [Addr, Addr+Len).
type LineEntry struct {
	Addr uint64
	Len  uint64
	File string
	Line int
}

// Image is a loaded guest program: the binary artifact the DBI framework
// instruments.
type Image struct {
	// Text is the encoded instruction stream, loaded at TextBase.
	Text []uint64
	// Data is the initialized data segment, loaded at DataBase.
	Data []byte
	// Entry is the address of the first instruction of main.
	Entry uint64
	// HostImports maps host-call numbers (the imm of OpHcall) to imported
	// function names, resolved against the machine's host library at load
	// time.
	HostImports []string
	// Symbols is sorted by address at Freeze time.
	Symbols []Symbol
	// Lines is sorted by address at Freeze time.
	Lines []LineEntry
	// TLSSize is the per-thread TLS template size (bytes past the TCB
	// header) required by _Thread_local objects in the program.
	TLSSize uint64

	frozen bool
}

// TextEnd returns the first address past the text segment.
func (im *Image) TextEnd() uint64 {
	return TextBase + uint64(len(im.Text))*InstrBytes
}

// Freeze sorts lookup tables and validates the image. It must be called
// before the image is executed.
func (im *Image) Freeze() error {
	sort.Slice(im.Symbols, func(i, j int) bool { return im.Symbols[i].Addr < im.Symbols[j].Addr })
	sort.Slice(im.Lines, func(i, j int) bool { return im.Lines[i].Addr < im.Lines[j].Addr })
	if im.Entry < TextBase || im.Entry >= im.TextEnd() {
		return fmt.Errorf("guest: entry 0x%x outside text [0x%x,0x%x)", im.Entry, TextBase, im.TextEnd())
	}
	for i, w := range im.Text {
		in := Decode(w)
		if !in.Valid() {
			return fmt.Errorf("guest: invalid instruction at 0x%x: %#x", TextBase+uint64(i)*InstrBytes, w)
		}
	}
	im.frozen = true
	return nil
}

// Frozen reports whether Freeze has been called successfully.
func (im *Image) Frozen() bool { return im.frozen }

// FetchInstr decodes the instruction at the given text address.
func (im *Image) FetchInstr(addr uint64) (Instr, error) {
	if addr < TextBase || addr >= im.TextEnd() || (addr-TextBase)%InstrBytes != 0 {
		return Instr{}, fmt.Errorf("guest: bad fetch address 0x%x", addr)
	}
	return Decode(im.Text[(addr-TextBase)/InstrBytes]), nil
}

// SymbolFor returns the symbol containing addr, or nil.
func (im *Image) SymbolFor(addr uint64) *Symbol {
	i := sort.Search(len(im.Symbols), func(i int) bool { return im.Symbols[i].Addr > addr })
	for j := i - 1; j >= 0; j-- {
		s := &im.Symbols[j]
		if addr >= s.Addr && addr < s.Addr+s.Size {
			return s
		}
		// Symbols are sorted by Addr; once we are below a symbol whose
		// span cannot reach addr we can stop only if sizes were nested,
		// so just check a few and bail.
		if s.Addr+s.Size <= addr && j < i-4 {
			break
		}
	}
	return nil
}

// SymbolByName returns the symbol with the given name, or nil.
func (im *Image) SymbolByName(name string) *Symbol {
	for i := range im.Symbols {
		if im.Symbols[i].Name == name {
			return &im.Symbols[i]
		}
	}
	return nil
}

// LineFor returns the source location covering addr, or ("", 0).
func (im *Image) LineFor(addr uint64) (string, int) {
	i := sort.Search(len(im.Lines), func(i int) bool { return im.Lines[i].Addr > addr })
	if i == 0 {
		return "", 0
	}
	e := im.Lines[i-1]
	if addr >= e.Addr && addr < e.Addr+e.Len {
		return e.File, e.Line
	}
	return "", 0
}

// Locate renders "symbol (file:line)" for an address, used by error reports.
func (im *Image) Locate(addr uint64) string {
	sym := im.SymbolFor(addr)
	file, line := im.LineFor(addr)
	switch {
	case sym != nil && file != "":
		return fmt.Sprintf("%s (%s:%d)", sym.Name, file, line)
	case sym != nil:
		return fmt.Sprintf("%s (+0x%x)", sym.Name, addr-sym.Addr)
	case file != "":
		return fmt.Sprintf("%s:%d", file, line)
	default:
		return fmt.Sprintf("0x%x", addr)
	}
}

// Disassemble renders the text segment (or a range of it) for debugging.
func (im *Image) Disassemble(from, to uint64) string {
	if from == 0 {
		from = TextBase
	}
	if to == 0 || to > im.TextEnd() {
		to = im.TextEnd()
	}
	out := ""
	for a := from; a < to; a += InstrBytes {
		if sym := im.SymbolFor(a); sym != nil && sym.Addr == a {
			out += fmt.Sprintf("\n<%s>:\n", sym.Name)
		}
		in, _ := im.FetchInstr(a)
		out += fmt.Sprintf("  0x%06x: %s\n", a, in)
	}
	return out
}
