// Package guest defines the guest instruction-set architecture that the DBI
// framework instruments: a little-endian 64-bit RISC machine with a fixed
// 8-byte instruction encoding, plus the binary program-image format (text,
// data, symbols, line tables, host imports) that stands in for ELF.
//
// Programs for this machine are genuine binary artifacts: the framework
// decodes instruction words, so runtime-library code and user code are
// indistinguishable at instrumentation time — the property heavyweight DBI
// relies on.
package guest

import "fmt"

// Register indices. The machine has 16 general-purpose 64-bit registers.
// r0..r5 carry arguments to calls and host calls; r0 carries results.
const (
	R0 = iota
	R1
	R2
	R3
	R4
	R5
	R6
	R7
	R8
	R9
	R10
	R11
	R12
	SP // stack pointer
	FP // frame pointer
	LR // link register
	// NumRegs is the register file size.
	NumRegs
)

// TP is the thread pointer: r12 is reserved by the ABI to hold the thread's
// TLS block base (its TCB address), like tp on RISC-V or fs on x86-64.
// _Thread_local objects are addressed as [TP + offset].
const TP = R12

// RegName returns the assembler name of a register.
func RegName(r uint8) string {
	switch r {
	case SP:
		return "sp"
	case FP:
		return "fp"
	case LR:
		return "lr"
	default:
		return fmt.Sprintf("r%d", r)
	}
}

// Opcode enumerates guest instructions.
type Opcode uint8

// Instruction opcodes. Every instruction is 8 bytes:
//
//	byte 0: opcode
//	byte 1: rd
//	byte 2: rs1
//	byte 3: rs2
//	bytes 4..7: imm (int32, little-endian)
const (
	OpNop Opcode = iota
	// OpLdi: rd = signext(imm).
	OpLdi
	// OpLdih: rd = (uint64(imm) << 32) | (rd & 0xffffffff). Combined with
	// OpLdi it materializes arbitrary 64-bit constants.
	OpLdih
	// OpMov: rd = rs1.
	OpMov
	// ALU register-register: rd = rs1 op rs2.
	OpAdd
	OpSub
	OpMul
	OpDiv
	OpRem
	OpAnd
	OpOr
	OpXor
	OpShl
	OpShr
	OpSar
	// Comparisons: rd = (rs1 cmp rs2) ? 1 : 0.
	OpSeq
	OpSne
	OpSlt
	OpSge
	OpSltu
	OpSgeu
	// ALU register-immediate: rd = rs1 op signext(imm).
	OpAddi
	OpMuli
	OpAndi
	OpOri
	OpShli
	OpShri
	// Float (IEEE-754 float64 bit patterns in registers).
	OpFadd
	OpFsub
	OpFmul
	OpFdiv
	OpFlt // rd = (f(rs1) <  f(rs2)) ? 1 : 0
	OpFle
	OpFeq
	OpItof
	OpFtoi
	// Loads: rd = zeroext(M[rs1 + signext(imm)]).
	OpLd8
	OpLd16
	OpLd32
	OpLd64
	// Stores: M[rs1 + signext(imm)] = truncate(rs2).
	OpSt8
	OpSt16
	OpSt32
	OpSt64
	// Control flow. Branch/jump targets are absolute guest addresses in imm.
	OpJmp  // pc = imm
	OpBeq  // if rs1 == rs2: pc = imm
	OpBne  // if rs1 != rs2: pc = imm
	OpBlt  // signed <
	OpBge  // signed >=
	OpBltu // unsigned <
	OpBgeu // unsigned >=
	OpJal  // lr = pc+8; pc = imm
	OpJalr // lr = pc+8; pc = rs1
	OpRet  // pc = lr
	// OpHcall: call host library function #imm. Arguments in r0..r5,
	// result in r0. May block the calling thread.
	OpHcall
	// OpCreq: client request #imm (tool communication). Arguments in
	// r0..r5, result in r0. A no-op returning 0 when no tool is loaded.
	OpCreq
	// OpHlt: terminate the current thread; on the main thread, exit the
	// program with status rs1.
	OpHlt
	numOpcodes
)

// InstrBytes is the size of one encoded instruction.
const InstrBytes = 8

var opcodeNames = [numOpcodes]string{
	"nop", "ldi", "ldih", "mov",
	"add", "sub", "mul", "div", "rem", "and", "or", "xor", "shl", "shr", "sar",
	"seq", "sne", "slt", "sge", "sltu", "sgeu",
	"addi", "muli", "andi", "ori", "shli", "shri",
	"fadd", "fsub", "fmul", "fdiv", "flt", "fle", "feq", "itof", "ftoi",
	"ld8", "ld16", "ld32", "ld64",
	"st8", "st16", "st32", "st64",
	"jmp", "beq", "bne", "blt", "bge", "bltu", "bgeu",
	"jal", "jalr", "ret",
	"hcall", "creq", "hlt",
}

// String returns the mnemonic.
func (o Opcode) String() string {
	if int(o) < len(opcodeNames) {
		return opcodeNames[o]
	}
	return fmt.Sprintf("op%d", uint8(o))
}

// Instr is one decoded guest instruction.
type Instr struct {
	Op  Opcode
	Rd  uint8
	Rs1 uint8
	Rs2 uint8
	Imm int32
}

// Encode packs the instruction into its 8-byte word.
func (in Instr) Encode() uint64 {
	return uint64(in.Op) |
		uint64(in.Rd)<<8 |
		uint64(in.Rs1)<<16 |
		uint64(in.Rs2)<<24 |
		uint64(uint32(in.Imm))<<32
}

// Decode unpacks an 8-byte instruction word.
func Decode(word uint64) Instr {
	return Instr{
		Op:  Opcode(word & 0xff),
		Rd:  uint8(word >> 8),
		Rs1: uint8(word >> 16),
		Rs2: uint8(word >> 24),
		Imm: int32(uint32(word >> 32)),
	}
}

// Valid reports whether the instruction decodes to a known opcode with
// register fields in range.
func (in Instr) Valid() bool {
	return in.Op < numOpcodes &&
		in.Rd < NumRegs && in.Rs1 < NumRegs && in.Rs2 < NumRegs
}

// IsBlockEnd reports whether the instruction terminates a basic block
// (transfers or may transfer control, or leaves guest code).
func (in Instr) IsBlockEnd() bool {
	switch in.Op {
	case OpJmp, OpBeq, OpBne, OpBlt, OpBge, OpBltu, OpBgeu,
		OpJal, OpJalr, OpRet, OpHcall, OpCreq, OpHlt:
		return true
	}
	return false
}

// MemWidth returns the access width in bytes for load/store opcodes, and 0
// for all others.
func (in Instr) MemWidth() uint8 {
	switch in.Op {
	case OpLd8, OpSt8:
		return 1
	case OpLd16, OpSt16:
		return 2
	case OpLd32, OpSt32:
		return 4
	case OpLd64, OpSt64:
		return 8
	}
	return 0
}

// IsLoad reports whether the instruction reads memory.
func (in Instr) IsLoad() bool {
	return in.Op >= OpLd8 && in.Op <= OpLd64
}

// IsStore reports whether the instruction writes memory.
func (in Instr) IsStore() bool {
	return in.Op >= OpSt8 && in.Op <= OpSt64
}

// String disassembles the instruction.
func (in Instr) String() string {
	rd, r1, r2 := RegName(in.Rd), RegName(in.Rs1), RegName(in.Rs2)
	switch in.Op {
	case OpNop:
		return "nop"
	case OpLdi, OpLdih:
		return fmt.Sprintf("%s %s, %d", in.Op, rd, in.Imm)
	case OpMov, OpItof, OpFtoi:
		return fmt.Sprintf("%s %s, %s", in.Op, rd, r1)
	case OpAdd, OpSub, OpMul, OpDiv, OpRem, OpAnd, OpOr, OpXor,
		OpShl, OpShr, OpSar, OpSeq, OpSne, OpSlt, OpSge, OpSltu, OpSgeu,
		OpFadd, OpFsub, OpFmul, OpFdiv, OpFlt, OpFle, OpFeq:
		return fmt.Sprintf("%s %s, %s, %s", in.Op, rd, r1, r2)
	case OpAddi, OpMuli, OpAndi, OpOri, OpShli, OpShri:
		return fmt.Sprintf("%s %s, %s, %d", in.Op, rd, r1, in.Imm)
	case OpLd8, OpLd16, OpLd32, OpLd64:
		return fmt.Sprintf("%s %s, [%s%+d]", in.Op, rd, r1, in.Imm)
	case OpSt8, OpSt16, OpSt32, OpSt64:
		return fmt.Sprintf("%s [%s%+d], %s", in.Op, r1, in.Imm, r2)
	case OpJmp, OpJal:
		return fmt.Sprintf("%s 0x%x", in.Op, uint32(in.Imm))
	case OpBeq, OpBne, OpBlt, OpBge, OpBltu, OpBgeu:
		return fmt.Sprintf("%s %s, %s, 0x%x", in.Op, r1, r2, uint32(in.Imm))
	case OpJalr:
		return fmt.Sprintf("jalr %s", r1)
	case OpRet:
		return "ret"
	case OpHcall:
		return fmt.Sprintf("hcall #%d", in.Imm)
	case OpCreq:
		return fmt.Sprintf("creq #%d", in.Imm)
	case OpHlt:
		return fmt.Sprintf("hlt %s", r1)
	}
	return fmt.Sprintf("?%d", uint8(in.Op))
}
