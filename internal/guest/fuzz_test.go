package guest_test

import (
	"encoding/binary"
	"testing"

	"repro/internal/guest"
)

// FuzzDecode: the instruction decoder must accept arbitrary 8-byte words
// without panicking — a guest image is untrusted input — and every valid
// decode must roundtrip through Encode bit-exactly.
func FuzzDecode(f *testing.F) {
	f.Add(uint64(0))
	f.Add(^uint64(0))
	f.Add(guest.Instr{Op: guest.OpAddi, Rd: 1, Rs1: 2, Imm: -4}.Encode())
	f.Add(guest.Instr{Op: guest.OpLd64, Rd: 3, Rs1: guest.SP, Imm: 16}.Encode())
	f.Fuzz(func(t *testing.T, word uint64) {
		in := guest.Decode(word)
		// None of the inspection paths may panic, whatever the bytes.
		_ = in.String()
		_ = in.Valid()
		_ = in.MemWidth()
		_ = in.IsBlockEnd()
		_ = in.IsLoad()
		_ = in.IsStore()
		if got := in.Encode(); got != word {
			t.Fatalf("roundtrip: Encode(Decode(%#x)) = %#x", word, got)
		}
	})
}

// FuzzDecodeBytes drives Decode through the byte-slice form images use.
func FuzzDecodeBytes(f *testing.F) {
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0})
	f.Add([]byte{0xff, 0x10, 0x20, 0x30, 0x40, 0x50, 0x60, 0x70})
	f.Fuzz(func(t *testing.T, raw []byte) {
		if len(raw) < 8 {
			return
		}
		in := guest.Decode(binary.LittleEndian.Uint64(raw))
		_ = in.String()
		_ = in.Valid()
	})
}
