package core_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/gbuild"
	"repro/internal/harness"
	"repro/internal/omp"
	"repro/internal/tools/toolreg"
)

// serialOnly is a program with no parallel region at all.
func serialOnly() *gbuild.Builder {
	b := omp.NewProgram()
	b.Global("x", 8)
	f := b.Func("main", "serial.c")
	f.Enter(0)
	f.LoadSym(R1, "x")
	f.Ldi(R2, 9)
	f.St(8, R1, 0, R2)
	f.Ld(8, R0, R1, 0)
	f.Hlt(R0)
	return b
}

// TestSerialProgramUnderEveryTool: no tool reports anything on purely
// serial code, and none crashes.
func TestSerialProgramUnderEveryTool(t *testing.T) {
	for _, name := range toolreg.Names() {
		tool, count, err := toolreg.Make(name)
		if err != nil {
			t.Fatal(err)
		}
		res, _, err := harness.BuildAndRun(serialOnly(), harness.Setup{Tool: tool, Seed: 1, Threads: 4})
		if err != nil || res.Err != nil {
			t.Fatalf("%s: %v %v", name, err, res.Err)
		}
		if res.ExitCode != 9 {
			t.Errorf("%s: exit = %d", name, res.ExitCode)
		}
		if count() != 0 {
			t.Errorf("%s reported %d on serial code", name, count())
		}
	}
}

// TestEmptyParallelRegion: a region whose microtask does nothing.
func TestEmptyParallelRegion(t *testing.T) {
	b := omp.NewProgram()
	f := b.Func("micro", "empty.c")
	f.Enter(0)
	f.Leave()
	f = b.Func("main", "empty.c")
	f.Enter(0)
	f.Ldi(R1, 0)
	omp.Parallel(f, "micro", R1, 4)
	f.Ldi(R0, 3)
	f.Hlt(R0)

	tg := core.New(core.DefaultOptions())
	res, _, err := harness.BuildAndRun(b, harness.Setup{Tool: tg, Seed: 1, Threads: 4})
	if err != nil || res.Err != nil {
		t.Fatal(err, res.Err)
	}
	if res.ExitCode != 3 || tg.RaceCount != 0 {
		t.Fatalf("exit=%d races=%d", res.ExitCode, tg.RaceCount)
	}
	// A fork/join structure exists even with no work.
	if tg.Graph().NumNodes() < 6 {
		t.Fatalf("nodes = %d", tg.Graph().NumNodes())
	}
}

// TestBackToBackRegionsAreOrdered: Eq. 1 — everything in region 1 happens
// before everything in region 2, so cross-region write/write pairs are not
// races.
func TestBackToBackRegionsAreOrdered(t *testing.T) {
	b := omp.NewProgram()
	b.Global("x", 8)
	f := b.Func("micro", "two.c")
	f.Enter(0)
	fn := f
	omp.SingleNowait(f, func() {
		fn.LoadSym(R1, "x")
		fn.Ld(8, R2, R1, 0)
		fn.Addi(R2, R2, 1)
		fn.St(8, R1, 0, R2)
	})
	f.Leave()
	f = b.Func("main", "two.c")
	f.Enter(0)
	f.Ldi(R1, 0)
	omp.Parallel(f, "micro", R1, 4)
	f.Ldi(R1, 0)
	omp.Parallel(f, "micro", R1, 4)
	f.LoadSym(R1, "x")
	f.Ld(8, R0, R1, 0)
	f.Hlt(R0)

	for seed := uint64(1); seed <= 6; seed++ {
		tg := core.New(core.DefaultOptions())
		res, _, err := harness.BuildAndRun(b, harness.Setup{Tool: tg, Seed: seed, Threads: 4})
		if err != nil || res.Err != nil {
			t.Fatal(err, res.Err)
		}
		if res.ExitCode != 2 {
			t.Fatalf("x = %d", res.ExitCode)
		}
		if tg.RaceCount != 0 {
			t.Fatalf("seed %d: cross-region FP (Eq.1 broken):\n%s", seed, tg.Reports.String())
		}
		b = rebuildTwoRegions()
	}
}

func rebuildTwoRegions() *gbuild.Builder {
	b := omp.NewProgram()
	b.Global("x", 8)
	f := b.Func("micro", "two.c")
	f.Enter(0)
	fn := f
	omp.SingleNowait(f, func() {
		fn.LoadSym(R1, "x")
		fn.Ld(8, R2, R1, 0)
		fn.Addi(R2, R2, 1)
		fn.St(8, R1, 0, R2)
	})
	f.Leave()
	f = b.Func("main", "two.c")
	f.Enter(0)
	f.Ldi(R1, 0)
	omp.Parallel(f, "micro", R1, 4)
	f.Ldi(R1, 0)
	omp.Parallel(f, "micro", R1, 4)
	f.LoadSym(R1, "x")
	f.Ld(8, R0, R1, 0)
	f.Hlt(R0)
	return b
}
