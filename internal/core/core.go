// Package core implements Taskgrind — the paper's primary contribution: a
// heavyweight DBI tool that records every memory access of a parallel
// program into per-segment interval trees (§III-B), builds the segment graph
// of the execution from OMPT events delivered as client requests (§III-A),
// and runs the determinacy-race analysis of Algorithm 1 with the
// false-positive suppressions of §IV: the __kmp ignore-list, allocator
// overloading (free as a no-op), TLS (TCB/DTV) recording, and stack-frame
// registration.
package core

import (
	"strings"

	"repro/internal/dbi"
	"repro/internal/guest"
	"repro/internal/itree"
	"repro/internal/obs"
	"repro/internal/report"
	"repro/internal/seggraph"
	"repro/internal/vex"
	"repro/internal/vm"
)

// Options configures Taskgrind.
type Options struct {
	// IgnoreList disables instrumentation for symbols with any of these
	// prefixes (§IV-A). Default: ["__kmp"].
	IgnoreList []string
	// InstrumentList, when non-empty, restricts instrumentation to symbols
	// with these prefixes.
	InstrumentList []string
	// NoFree redirects free to a no-op so heap addresses are never
	// recycled (§IV-B). Default true.
	NoFree bool
	// TLSSuppression enables the TCB/DTV same-thread filter (§IV-C).
	// Default true.
	TLSSuppression bool
	// StackSuppression enables the registered-frame filter (§IV-D).
	// Default true.
	StackSuppression bool
	// AssumeDeferrable treats undeferred tasks as deferred for ordering
	// (the §V-B annotation); also toggled by the CRAssumeDeferrable
	// client request.
	AssumeDeferrable bool
	// AnalysisWorkers parallelizes the post-mortem analysis pass (the
	// paper's future-work item). 0 or 1 runs it sequentially.
	AnalysisWorkers int
	// MaxReports caps how many reports keep full details (the count is
	// always exact). Default 1024.
	MaxReports int

	// --- capability deltas used by the baseline tool simulators ---

	// NoUndeferredOrdering makes the tool treat undeferred tasks as
	// ordinary deferred tasks (TaskSanitizer/ROMP behaviour: FP on
	// DRB122-taskundeferred).
	NoUndeferredOrdering bool
	// NoTaskgroupOrdering drops the taskgroup-end edges (TaskSanitizer:
	// FP on DRB107-taskgroup).
	NoTaskgroupOrdering bool
	// IgnoreMutexinoutsetDeps drops mutexinoutset dependence edges
	// (ROMP: FP on DRB135).
	IgnoreMutexinoutsetDeps bool
	// GlobalDepNamespace re-matches raw dependences across *all* tasks
	// instead of siblings only — the mis-modelling that makes
	// TaskSanitizer miss non-sibling-dependence races (FN on DRB173/175).
	GlobalDepNamespace bool
	// IgnorePoolRegion drops accesses to the runtime's internal
	// allocation pool: compile-time-instrumented tools never see
	// kmp_task_t internals. Taskgrind (binary instrumentation) does —
	// the §IV-B fast-allocate limitation is uniquely its problem.
	IgnorePoolRegion bool
	// NoIfZeroOrdering keeps if(0)/final undeferred tasks unordered while
	// still ordering team-serialized tasks (ROMP: its runtime hooks see
	// explicit undeferred dispatch but not the serialized path).
	NoIfZeroOrdering bool
	// IgnoreDeferrableAnnotation makes the tool ignore the Taskgrind-
	// specific CRAssumeDeferrable client request (all baselines do).
	IgnoreDeferrableAnnotation bool
	// StackSuppressWindow bounds the §IV-D frame suppression to addresses
	// within this many bytes below the registered frame (0 = unlimited).
	// TaskSanitizer tracks only the task's immediate frame, so deep
	// callee locals escape its suppression (TMB 1003/1005 FPs).
	StackSuppressWindow uint64
	// MutexOrders makes critical sections order segments in their
	// acquisition order. TaskSanitizer and ROMP support mutexes;
	// Taskgrind deliberately does not (paper §VI) — mutual exclusion
	// does not remove determinacy.
	MutexOrders bool
	// CompileTime runs the tool as compiled-in checks on the direct
	// engine instead of heavyweight IR instrumentation — the execution
	// model of Archer/TaskSanitizer/ROMP, and the reason they are an
	// order of magnitude faster than Taskgrind in Table II.
	CompileTime bool
	// FlatShadow models a per-access shadow (no interval merging): the
	// footprint accounting charges every recorded access individually,
	// the way ROMP's shadow memory grows (§V-B: 75 GB at -s 64 where
	// Taskgrind's interval trees stay compact). Only the accounting is
	// flat — the analysis still uses the trees.
	FlatShadow bool
	// NoFreePool extends the §IV-B free-as-no-op treatment to the
	// runtime's internal fast allocator — the paper's stated future work
	// ("we need to support libraries built-in memory allocators").
	// Off by default to preserve the published tool behaviour (the
	// pool-recycling false positives of Table I); the harness honours it
	// by disabling recycling in the runtime pool, the effect the proposed
	// __kmp_fast_allocate function replacement would have.
	NoFreePool bool
	// StackLifetimeSuppression is this reproduction's fix for the
	// false-positive class the paper leaves open ("Taskgrind detects
	// conflicting sibling tasks on a memory location in their parent
	// segment stack frame"): a stack address is a *different object* in
	// two same-thread segments if the stack popped above it in between —
	// concurrent subtrees scheduled sequentially reuse frame memory
	// without sharing objects. Sound: a live object's address can never
	// be above an intervening stack-pointer high-water mark.
	StackLifetimeSuppression bool
}

// DefaultOptions returns the paper's configuration.
func DefaultOptions() Options {
	return Options{
		IgnoreList:               []string{"__kmp"},
		NoFree:                   true,
		TLSSuppression:           true,
		StackSuppression:         true,
		StackLifetimeSuppression: true,
		MaxReports:               1024,
	}
}

// NaiveOptions disables every suppression — the §IV motivation configuration
// that reports ~400k races on LULESH.
func NaiveOptions() Options {
	return Options{MaxReports: 1024}
}

// Segment is one node of the segment graph with its access records.
type Segment struct {
	Node   seggraph.NodeID
	Thread int
	TaskID uint64
	// Label is the construct source location used in reports.
	Label string
	// Frame is the frame pointer registered at segment start (§IV-D).
	Frame uint64
	// EventSP is the raw stack pointer at segment creation, used by the
	// stack-lifetime suppression.
	EventSP uint64
	// TLSGen is the thread's DTV generation at segment start (§IV-C).
	TLSGen uint64
	// Reads and Writes are the access interval trees (§III-B).
	Reads, Writes *itree.Tree
}

// taskInfo tracks a task between its OMPT events.
type taskInfo struct {
	id         uint64
	parent     uint64
	flags      uint64
	fnAddr     uint64
	seq        int
	createSeg  *Segment
	lastSeg    *Segment
	firstSeg   *Segment
	depPreds   []uint64
	children   []uint64
	deferrable bool
	completed  bool
	// groupStarts stacks taskgroup open points (task-creation sequence
	// numbers) for descendant collection at group end.
	groupStarts []int
	// waitDepPreds accumulates the predecessors of an in-flight
	// `taskwait depend(...)`.
	waitDepPreds []uint64
}

// regionInfo tracks a parallel region.
type regionInfo struct {
	forkSeg  *Segment
	lasts    []*Segment
	arrivals map[uint64][]*Segment // barrier gen -> arrival segments
	fnAddr   uint64
}

// threadState is Taskgrind's per-thread state (vm.Thread.Tool).
type threadState struct {
	cur   *Segment
	stack []*Segment
}

// globalSlot backs the GlobalDepNamespace mis-modelling option.
type globalSlot struct {
	writers []uint64
	readers []uint64
}

// Stats counts analysis work.
type Stats struct {
	AccessesRecorded uint64
	SegmentsCreated  int
	PairsChecked     uint64
	ConflictPairs    int
	SuppressedTLS    uint64
	SuppressedStack  uint64
	ReportsTotal     int
	// InstrumentedLoads/Stores count the access hooks inserted at
	// instrumentation time (per cached block, not per execution).
	InstrumentedLoads  uint64
	InstrumentedStores uint64
}

// Taskgrind is the tool plugin.
type Taskgrind struct {
	Opt   Options
	Stats Stats
	// Variant is the registry name this instance was configured under
	// ("taskgrind-naive", "tasksan", ...). Differently-configured instances
	// instrument differently, so the translation store must not key them all
	// under the shared Name(); see ToolID.
	Variant string

	c     *dbi.Core
	graph *seggraph.Graph
	segs  []*Segment

	tasks       map[uint64]*taskInfo
	taskSeq     int
	regions     map[uint64]*regionInfo
	globalSlots map[uint64]*globalSlot
	critRel     map[uint64]*Segment
	relSeg      map[uint64]*Segment
	believed    map[[2]uint64]bool

	assumeDeferrable bool

	// lifetimes is the per-thread (segment, event SP) index built at Fini
	// for the stack-lifetime suppression.
	lifetimes map[int]*spIndex
	// stackOf maps thread id to its stack bounds.
	stackOf map[int][2]uint64

	// Reports is filled by the Fini analysis pass.
	Reports report.Set
	// RaceCount is the exact number of conflicting segment pairs.
	RaceCount int
}

// New creates a Taskgrind instance.
func New(opt Options) *Taskgrind {
	if opt.MaxReports == 0 {
		opt.MaxReports = 1024
	}
	return &Taskgrind{
		Opt:              opt,
		graph:            seggraph.New(),
		tasks:            make(map[uint64]*taskInfo),
		regions:          make(map[uint64]*regionInfo),
		assumeDeferrable: opt.AssumeDeferrable,
	}
}

// Name implements dbi.Tool.
func (tg *Taskgrind) Name() string { return "taskgrind" }

// ToolID implements dbi.Identifier: the translation-store identity. Every
// option that changes Instrument's output (ignore lists, compile-time
// scoping) lives in the registry configuration, so the registry name is the
// correct cache key — Name() alone would collide taskgrind with
// taskgrind-naive (whose suppressions are off and whose instrumentation
// therefore covers more code).
func (tg *Taskgrind) ToolID() string {
	if tg.Variant != "" {
		return tg.Variant
	}
	return tg.Name()
}

// Attach implements dbi.Attacher: installs the allocator overload and the
// shadow-footprint reporter.
func (tg *Taskgrind) Attach(c *dbi.Core) {
	tg.c = c
	if tg.Opt.NoFree {
		// Valgrind-style function replacement: free becomes a no-op so
		// no heap address is ever recycled (§IV-B). The registry still
		// learns about the free for reporting.
		_, err := c.M.RedirectHost("free", func(m *vm.Machine, t *vm.Thread) vm.HostResult {
			c.RecordFree(t.Regs[guest.R0])
			return vm.HostResult{}
		})
		// A program that never imports free has nothing to redirect.
		_ = err
	}
	c.M.ExtraFootprint = func() uint64 {
		return tg.ShadowFootprint() + c.CacheFootprint()
	}
}

// AccessHooks implements dbi.CompileTimeTool when Opt.CompileTime is set:
// the tool's checks run inline on the direct engine.
func (tg *Taskgrind) AccessHooks(im *guest.Image) (load, store vm.AccessHook, filter []bool) {
	if !tg.Opt.CompileTime {
		return nil, nil, nil
	}
	filter = dbi.SymbolFilter(im, func(sym string) bool { return !tg.symFiltered(sym) })
	load = func(t *vm.Thread, addr uint64, w uint8, pc uint64) {
		tg.record(t, addr, w, false)
	}
	store = func(t *vm.Thread, addr uint64, w uint8, pc uint64) {
		tg.record(t, addr, w, true)
	}
	return load, store, filter
}

// record attributes one access to the thread's current segment.
func (tg *Taskgrind) record(t *vm.Thread, addr uint64, w uint8, write bool) {
	ts, ok := t.Tool.(*threadState)
	if !ok || ts.cur == nil || tg.skipAddr(addr) {
		return
	}
	tg.Stats.AccessesRecorded++
	if write {
		ts.cur.Writes.InsertPoint(addr, w)
	} else {
		ts.cur.Reads.InsertPoint(addr, w)
	}
}

// ShadowFootprint approximates the tool's shadow-structure memory.
func (tg *Taskgrind) ShadowFootprint() uint64 {
	var f uint64
	if tg.Opt.FlatShadow {
		// 24 bytes per recorded access (addr, width, kind, task tag).
		f += tg.Stats.AccessesRecorded * 24
	}
	for _, s := range tg.segs {
		f += s.Reads.Footprint() + s.Writes.Footprint() + 128
	}
	f += uint64(tg.graph.NumNodes()*16 + tg.graph.NumEdges()*8)
	return f
}

// PublishMetrics implements obs.MetricSource: the tool's analysis counters
// under a "tool_" prefix, so the registry snapshot carries everything the
// -v stats print shows.
func (tg *Taskgrind) PublishMetrics(reg *obs.Registry) {
	s := &tg.Stats
	reg.Counter("tool_accesses_recorded_total").Set(s.AccessesRecorded)
	reg.Counter("tool_segments_total").Set(uint64(s.SegmentsCreated))
	reg.Counter("tool_pairs_checked_total").Set(s.PairsChecked)
	reg.Counter("tool_conflict_pairs_total").Set(uint64(s.ConflictPairs))
	reg.Counter("tool_suppressed_tls_total").Set(s.SuppressedTLS)
	reg.Counter("tool_suppressed_stack_total").Set(s.SuppressedStack)
	reg.Counter("tool_reports_total").Set(uint64(s.ReportsTotal))
	reg.Counter("tool_instrumented_loads_total").Set(s.InstrumentedLoads)
	reg.Counter("tool_instrumented_stores_total").Set(s.InstrumentedStores)
	reg.Gauge("tool_shadow_footprint_bytes").Set(float64(tg.ShadowFootprint()))
}

// Graph exposes the segment graph (tests, tooling).
func (tg *Taskgrind) Graph() *seggraph.Graph { return tg.graph }

// Segments exposes the segment list (tests, tooling).
func (tg *Taskgrind) Segments() []*Segment { return tg.segs }

// symFiltered reports whether a block in sym should be skipped.
func (tg *Taskgrind) symFiltered(sym string) bool {
	for _, p := range tg.Opt.IgnoreList {
		if strings.HasPrefix(sym, p) {
			return true
		}
	}
	if len(tg.Opt.InstrumentList) > 0 {
		for _, p := range tg.Opt.InstrumentList {
			if strings.HasPrefix(sym, p) {
				return false
			}
		}
		return true
	}
	return false
}

// Instrument implements dbi.Tool (IR-engine path): routes every load and
// store through the core's access-delivery machinery, which batches the
// records per superblock segment and hands them to FlushAccesses.
func (tg *Taskgrind) Instrument(c *dbi.Core, sb *vex.SuperBlock) *vex.SuperBlock {
	symName := ""
	if sym := c.M.Image.SymbolFor(sb.GuestAddr); sym != nil {
		symName = sym.Name
	}
	if tg.symFiltered(symName) {
		return sb
	}
	out, loads, stores := c.InstrumentAccesses(sb, tg)
	tg.Stats.InstrumentedLoads += loads
	tg.Stats.InstrumentedStores += stores
	return out
}

// FlushAccesses implements dbi.AccessSink: record a batch of accesses into
// the thread's current segment.
func (tg *Taskgrind) FlushAccesses(t *vm.Thread, batch []dbi.Access) {
	for i := range batch {
		a := &batch[i]
		tg.record(t, a.Addr, a.Wd, a.Store)
	}
}

// skipAddr drops accesses compile-time-instrumented tools never see.
func (tg *Taskgrind) skipAddr(addr uint64) bool {
	return tg.Opt.IgnorePoolRegion &&
		addr >= guest.FastPoolBase && addr < guest.FastPoolLimit
}

// newSegment registers a fresh segment for a thread, capturing the frame
// pointer and DTV generation (§IV-C/D).
func (tg *Taskgrind) newSegment(t *vm.Thread, label string, taskID uint64) *Segment {
	s := &Segment{
		Node:   tg.graph.AddNode(),
		Thread: t.ID,
		TaskID: taskID,
		Label:  label,
		// The registered frame is the frame pointer (the enclosing user
		// frame base), not SP: segment-starting runtime events fire at
		// transient hcall depths, and registering SP would misclassify
		// the caller's own staging slots (dep arrays, spill slots) as
		// shared state.
		Frame:   t.Regs[guest.FP],
		EventSP: t.Regs[guest.SP],
		TLSGen:  t.TLSGen,
		Reads:   itree.New(),
		Writes:  itree.New(),
	}
	tg.segs = append(tg.segs, s)
	tg.Stats.SegmentsCreated++
	return s
}

// locate renders a code address as "file:line" (fallback: symbol name).
func (tg *Taskgrind) locate(addr uint64) string {
	im := tg.c.M.Image
	if file, line := im.LineFor(addr); file != "" {
		return file + ":" + itoa(line)
	}
	if sym := im.SymbolFor(addr); sym != nil {
		return sym.Name
	}
	return "0x" + hex(addr)
}

// ThreadStart implements dbi.Tool: the main thread gets the root segment;
// workers get segments at their first implicit task.
func (tg *Taskgrind) ThreadStart(t *vm.Thread) {
	ts := &threadState{}
	t.Tool = ts
	if t.ID == 0 {
		ts.cur = tg.newSegment(t, "main", 0)
	}
}

// ThreadExit implements dbi.Tool.
func (tg *Taskgrind) ThreadExit(t *vm.Thread) {}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	neg := n < 0
	if neg {
		n = -n
	}
	var buf [24]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}

func hex(v uint64) string {
	const digits = "0123456789abcdef"
	if v == 0 {
		return "0"
	}
	var buf [16]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = digits[v&15]
		v >>= 4
	}
	return string(buf[i:])
}
