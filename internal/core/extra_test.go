package core_test

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/gbuild"
	"repro/internal/guest"
	"repro/internal/harness"
	"repro/internal/omp"
	"repro/internal/ompt"
)

// TestDumpDOT renders the listing4 segment graph and checks structure.
func TestDumpDOT(t *testing.T) {
	tg := runTG(t, listing4(true), core.DefaultOptions(), 2, 4)
	var buf bytes.Buffer
	if err := tg.DumpDOT(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"digraph segments", "task.c:8", "task.c:11",
		"->", "color=red", "shape=box",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT missing %q", want)
		}
	}
}

// TestMaxReportsCapsDetailsNotCount: the count stays exact past the cap.
func TestMaxReportsCapsDetailsNotCount(t *testing.T) {
	// Many racing task pairs: N tasks all writing the same global.
	b := omp.NewProgram()
	b.Global("g", 8)
	f := b.Func("w", "cap.c")
	f.LoadSym(R1, "g")
	f.Ldi(R2, 1)
	f.St(8, R1, 0, R2)
	f.Ret()
	f = b.Func("micro", "cap.c")
	f.Enter(16)
	fn := f
	omp.SingleNowait(f, func() {
		fn.Ldi(guest.R3, 0)
		fn.StLocal(8, 8, guest.R3)
		loop := fn.NewLabel()
		fn.Bind(loop)
		omp.EmitTask(fn, omp.TaskOpts{Fn: "w"})
		fn.LdLocal(8, guest.R3, 8)
		fn.Addi(guest.R3, guest.R3, 1)
		fn.StLocal(8, 8, guest.R3)
		fn.Ldi(guest.R2, 8)
		fn.Blt(guest.R3, guest.R2, loop)
		omp.Taskwait(fn)
	})
	f.Leave()
	f = b.Func("main", "cap.c")
	f.Enter(0)
	f.Ldi(R1, 0)
	omp.Parallel(f, "micro", R1, 4)
	f.Ldi(R0, 0)
	f.Hlt(R0)

	opt := core.DefaultOptions()
	opt.MaxReports = 5
	tg := core.New(opt)
	res, _, err := harness.BuildAndRun(b, harness.Setup{Tool: tg, Seed: 3, Threads: 4})
	if err != nil || res.Err != nil {
		t.Fatal(err, res.Err)
	}
	// 8 mutually racing tasks: 28 pairs.
	if tg.RaceCount != 28 {
		t.Fatalf("count = %d, want 28", tg.RaceCount)
	}
	if tg.Reports.Len() != 5 {
		t.Fatalf("stored reports = %d, want cap 5", tg.Reports.Len())
	}
}

// TestTLSGenBumpDefeatsSuppression: after a CRTLSGenBump the same-thread TLS
// suppression no longer applies (different DTV generations, §IV-C's
// documented limitation handling).
func TestTLSGenBumpDefeatsSuppression(t *testing.T) {
	build := func(bump bool) *gbuild.Builder {
		b := omp.NewProgram()
		off := int32(b.TLSGlobal("tv", 8))

		f := b.Func("w", "tls.c")
		f.Ld(8, R1, guest.TP, off)
		f.Addi(R1, R1, 1)
		f.St(8, guest.TP, off, R1)
		f.Ret()

		f = b.Func("micro", "tls.c")
		f.Enter(0)
		fn := f
		omp.SingleNowait(f, func() {
			omp.AssumeDeferrable(fn, true)
			omp.EmitTask(fn, omp.TaskOpts{Fn: "w"})
			if bump {
				fn.Ldi(R0, 2)
				fn.Creq(ompt.CRTLSGenBump)
			}
			omp.EmitTask(fn, omp.TaskOpts{Fn: "w"})
			omp.Taskwait(fn)
		})
		f.Leave()

		f = b.Func("main", "tls.c")
		f.Enter(0)
		f.Ldi(R1, 0)
		omp.Parallel(f, "micro", R1, 1)
		f.Ldi(R0, 0)
		f.Hlt(R0)
		return b
	}
	// Without the bump: same thread, same generation -> suppressed.
	tg := runTG(t, build(false), core.DefaultOptions(), 1, 1)
	if tg.RaceCount != 0 {
		t.Fatalf("no-bump races = %d\n%s", tg.RaceCount, tg.Reports.String())
	}
	// With a DTV change between the tasks the suppression must not fire.
	tg = runTG(t, build(true), core.DefaultOptions(), 1, 1)
	if tg.RaceCount == 0 {
		t.Fatal("TLS-gen change did not defeat the suppression")
	}
}

// TestMutexOrdersOption: with MutexOrders (the TaskSanitizer/ROMP mode),
// critical sections order segments; without, Taskgrind reports the
// nondeterministic accumulation (its documented §VI stance).
func TestMutexOrdersOption(t *testing.T) {
	build := func() *gbuild.Builder {
		b := omp.NewProgram()
		b.Global("sum", 8)
		f := b.Func("acc", "mx.c")
		f.Enter(0)
		fn := f
		omp.Critical(f, 4, func() {
			fn.LoadSym(R1, "sum")
			fn.Ld(8, R2, R1, 0)
			fn.Addi(R2, R2, 1)
			fn.St(8, R1, 0, R2)
		})
		f.Leave()
		f = b.Func("micro", "mx.c")
		f.Enter(0)
		fn2 := f
		omp.SingleNowait(f, func() {
			omp.EmitTask(fn2, omp.TaskOpts{Fn: "acc"})
			omp.EmitTask(fn2, omp.TaskOpts{Fn: "acc"})
			omp.Taskwait(fn2)
		})
		f.Leave()
		f = b.Func("main", "mx.c")
		f.Enter(0)
		f.Ldi(R1, 0)
		omp.Parallel(f, "micro", R1, 4)
		f.Ldi(R0, 0)
		f.Hlt(R0)
		return b
	}
	// Taskgrind (no mutex support): reports across seeds.
	found := false
	for seed := uint64(1); seed <= 6 && !found; seed++ {
		tg := runTG(t, build(), core.DefaultOptions(), seed, 4)
		found = tg.RaceCount > 0
	}
	if !found {
		t.Fatal("Taskgrind did not flag mutex-only 'ordering'")
	}
	// MutexOrders mode: clean.
	for seed := uint64(1); seed <= 6; seed++ {
		opt := core.DefaultOptions()
		opt.MutexOrders = true
		tg := runTG(t, build(), opt, seed, 4)
		if tg.RaceCount != 0 {
			t.Fatalf("seed %d: MutexOrders mode reported %d", seed, tg.RaceCount)
		}
	}
}

// TestCompileTimeModeMatchesIRMode: the same tool options find the same
// races whether running as IR instrumentation or as compiled-in hooks.
func TestCompileTimeModeMatchesIRMode(t *testing.T) {
	for _, compileTime := range []bool{false, true} {
		opt := core.DefaultOptions()
		opt.CompileTime = compileTime
		opt.IgnorePoolRegion = true // hook mode skips pool via same predicate
		tg := runTG(t, listing4(true), opt, 2, 4)
		if tg.RaceCount != 1 {
			t.Fatalf("compileTime=%v: races = %d, want 1", compileTime, tg.RaceCount)
		}
	}
}

// TestStackLifetimeSuppressionDirect exercises the §IV-D extension inside
// this package: two concurrent subtrees scheduled sequentially on one
// thread reuse parent-frame addresses; the suppression must separate the
// dead object from the live one.
func TestStackLifetimeSuppressionDirect(t *testing.T) {
	build := func() *gbuild.Builder {
		b := omp.NewProgram()

		// child writes into its parent's frame through the pointer in
		// its payload.
		f := b.Func("child", "lt.c")
		f.Ld(8, R1, R0, 0)
		f.Ldi(R2, 1)
		f.St(8, R1, 0, R2)
		f.Ret()

		// parent: spawn child with &local captured, taskwait (so the
		// write stays inside the parent's lifetime).
		f = b.Func("parent", "lt.c")
		f.Enter(16)
		fn := f
		omp.EmitTask(fn, omp.TaskOpts{Fn: "child", PayloadBytes: 8,
			Fill: func(f *gbuild.Func, p uint8) {
				f.LocalAddr(guest.R9, 8)
				f.St(8, p, 0, guest.R9)
			}})
		omp.Taskwait(fn)
		f.Leave()

		f = b.Func("micro", "lt.c")
		f.Enter(0)
		fn2 := f
		omp.SingleNowait(f, func() {
			omp.AssumeDeferrable(fn2, true)
			// Two parent tasks: their frames reuse the same stack
			// addresses when run back-to-back on one thread, and
			// their children's writes land on the same address —
			// different objects.
			omp.EmitTask(fn2, omp.TaskOpts{Fn: "parent"})
			omp.EmitTask(fn2, omp.TaskOpts{Fn: "parent"})
			omp.Taskwait(fn2)
		})
		f.Leave()

		f = b.Func("main", "lt.c")
		f.Enter(0)
		f.Ldi(R1, 0)
		omp.Parallel(f, "micro", R1, 1)
		f.Ldi(R0, 0)
		f.Hlt(R0)
		return b
	}
	// With the extensions: clean (one thread forces frame reuse; pool
	// no-free keeps the payload captures out of the way).
	opt0 := core.DefaultOptions()
	opt0.NoFreePool = true
	tg := runTG(t, build(), opt0, 1, 1)
	if tg.RaceCount != 0 {
		t.Fatalf("lifetime suppression missed reuse: %d races\n%s", tg.RaceCount, tg.Reports.String())
	}
	// Without it: the published tool's FP class appears.
	opt := core.DefaultOptions()
	opt.NoFreePool = true
	opt.StackLifetimeSuppression = false
	tg = runTG(t, build(), opt, 1, 1)
	if tg.RaceCount == 0 {
		t.Fatal("expected the paper's parent-frame FP without the extension")
	}
}
