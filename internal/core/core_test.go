package core_test

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/gbuild"
	"repro/internal/guest"
	"repro/internal/harness"
	"repro/internal/omp"
	"repro/internal/ompt"
	"repro/internal/report"
)

const R0, R1, R2 = guest.R0, guest.R1, guest.R2

// listing4 builds the paper's Listing 4 (task.c): two tasks racing on
// x[0] from a malloc'd block, inside parallel+single.
//
//	3: int *x = malloc(2*sizeof(int));
//	8: task { x[0] = 42; }
//	11: task { x[0] = 43; }
func listing4(racy bool) *gbuild.Builder {
	b := omp.NewProgram()
	b.Global("xptr", 8)

	f := b.Func("task_a", "task.c")
	f.Line(8)
	f.LoadSym(R1, "xptr") // shared pointer variable
	f.Ld(8, R1, R1, 0)
	f.Ldi(R2, 42)
	f.St(4, R1, 0, R2)
	f.Ret()

	f = b.Func("task_b", "task.c")
	f.Line(11)
	f.LoadSym(R1, "xptr")
	f.Ld(8, R1, R1, 0)
	f.Ldi(R2, 43)
	f.St(4, R1, 0, R2)
	f.Ret()

	f = b.Func("micro", "task.c")
	f.Enter(0)
	fn := f
	omp.SingleNowait(f, func() {
		fn.Line(8)
		omp.EmitTask(fn, omp.TaskOpts{Fn: "task_a"})
		if !racy {
			omp.Taskwait(fn)
		}
		fn.Line(11)
		omp.EmitTask(fn, omp.TaskOpts{Fn: "task_b"})
	})
	f.Leave()

	f = b.Func("main", "task.c")
	f.Enter(0)
	f.Line(3)
	f.Ldi(R0, 8)
	f.Hcall("malloc")
	f.LoadSym(R1, "xptr")
	f.St(8, R1, 0, R0)
	f.Line(4)
	f.Ldi(R1, 0)
	omp.Parallel(f, "micro", R1, 4)
	f.Ldi(R0, 0)
	f.Hlt(R0)
	return b
}

func runTG(t *testing.T, b *gbuild.Builder, opt core.Options, seed uint64, threads int) *core.Taskgrind {
	t.Helper()
	tg := core.New(opt)
	res, _, err := harness.BuildAndRun(b, harness.Setup{Tool: tg, Seed: seed, Threads: threads})
	if err != nil {
		t.Fatal(err)
	}
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	return tg
}

func TestListing4RaceDetected(t *testing.T) {
	for seed := uint64(1); seed <= 6; seed++ {
		tg := runTG(t, listing4(true), core.DefaultOptions(), seed, 4)
		if tg.RaceCount != 1 {
			t.Fatalf("seed %d: races = %d, want 1\n%s", seed, tg.RaceCount, tg.Reports.String())
		}
		r := tg.Reports.Races[0]
		labels := r.SegA + " " + r.SegB
		if !strings.Contains(labels, "task.c:8") || !strings.Contains(labels, "task.c:11") {
			t.Errorf("seed %d: labels = %q", seed, labels)
		}
		if r.Kind != "w/w" {
			t.Errorf("kind = %q", r.Kind)
		}
		if len(r.Ranges) != 1 || r.Ranges[0].Hi-r.Ranges[0].Lo != 4 {
			t.Errorf("ranges = %+v", r.Ranges)
		}
		if r.Ranges[0].BlockAddr == 0 {
			t.Error("no allocation block resolved")
		}
		joined := strings.Join(r.Ranges[0].BlockStack, " ")
		if !strings.Contains(joined, "task.c:3") {
			t.Errorf("allocation stack = %q, want task.c:3", joined)
		}
	}
}

// TestListing4ErrorReportRendering checks the Listing-6-style output.
func TestListing4ErrorReportRendering(t *testing.T) {
	tg := runTG(t, listing4(true), core.DefaultOptions(), 2, 4)
	out := tg.Reports.String()
	for _, want := range []string{
		"declared independent",
		"4 bytes from 0x",
		"allocated in block",
		"task.c:3",
		"1 determinacy race report",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

func TestListing4TaskwaitFixesRace(t *testing.T) {
	for seed := uint64(1); seed <= 6; seed++ {
		tg := runTG(t, listing4(false), core.DefaultOptions(), seed, 4)
		if tg.RaceCount != 0 {
			t.Fatalf("seed %d: races = %d, want 0\n%s", seed, tg.RaceCount, tg.Reports.String())
		}
	}
}

// TestSerializedUndeferredOrdering: on one thread tasks run undeferred and
// are fully ordered (LLVM "included" semantics) — no race reported, the
// Archer-style single-thread blindness Taskgrind inherits from the runtime
// UNLESS the deferrable annotation is used.
func TestSerializedUndeferredOrdering(t *testing.T) {
	tg := runTG(t, listing4(true), core.DefaultOptions(), 1, 1)
	if tg.RaceCount != 0 {
		t.Fatalf("undeferred races = %d, want 0\n%s", tg.RaceCount, tg.Reports.String())
	}
	// With the §V-B annotation the same execution reports the race.
	opt := core.DefaultOptions()
	opt.AssumeDeferrable = true
	tg = runTG(t, listing4(true), opt, 1, 1)
	if tg.RaceCount != 1 {
		t.Fatalf("annotated races = %d, want 1\n%s", tg.RaceCount, tg.Reports.String())
	}
}

// dep-ordered program: t1 out(g), t2 in(g) — ordered, no race at any count.
func depOrdered() *gbuild.Builder {
	b := omp.NewProgram()
	b.Global("g", 8)

	f := b.Func("t1", "dep.c")
	f.LoadSym(R1, "g")
	f.Ldi(R2, 5)
	f.St(8, R1, 0, R2)
	f.Ret()

	f = b.Func("t2", "dep.c")
	f.LoadSym(R1, "g")
	f.Ld(8, R2, R1, 0)
	f.Ret()

	f = b.Func("micro", "dep.c")
	f.Enter(0)
	fn := f
	omp.SingleNowait(f, func() {
		omp.EmitTask(fn, omp.TaskOpts{Fn: "t1", Deps: []omp.Dep{omp.DepSym(ompt.DepOut, "g")}})
		omp.EmitTask(fn, omp.TaskOpts{Fn: "t2", Deps: []omp.Dep{omp.DepSym(ompt.DepIn, "g")}})
	})
	f.Leave()

	f = b.Func("main", "dep.c")
	f.Enter(0)
	f.Ldi(R1, 0)
	omp.Parallel(f, "micro", R1, 4)
	f.Ldi(R0, 0)
	f.Hlt(R0)
	return b
}

func TestDependenceEdgesSuppressRace(t *testing.T) {
	for seed := uint64(1); seed <= 6; seed++ {
		tg := runTG(t, depOrdered(), core.DefaultOptions(), seed, 4)
		if tg.RaceCount != 0 {
			t.Fatalf("seed %d: races = %d\n%s", seed, tg.RaceCount, tg.Reports.String())
		}
	}
}

// missing-dep program: two tasks write g with no dependence — race.
func missingDep() *gbuild.Builder {
	b := omp.NewProgram()
	b.Global("g", 8)

	f := b.Func("t1", "md.c")
	f.LoadSym(R1, "g")
	f.Ldi(R2, 5)
	f.St(8, R1, 0, R2)
	f.Ret()

	f = b.Func("t2", "md.c")
	f.LoadSym(R1, "g")
	f.Ldi(R2, 6)
	f.St(8, R1, 0, R2)
	f.Ret()

	f = b.Func("micro", "md.c")
	f.Enter(0)
	fn := f
	omp.SingleNowait(f, func() {
		omp.EmitTask(fn, omp.TaskOpts{Fn: "t1"})
		omp.EmitTask(fn, omp.TaskOpts{Fn: "t2"})
	})
	f.Leave()

	f = b.Func("main", "md.c")
	f.Enter(0)
	f.Ldi(R1, 0)
	omp.Parallel(f, "micro", R1, 4)
	f.Ldi(R0, 0)
	f.Hlt(R0)
	return b
}

func TestMissingDependenceDetected(t *testing.T) {
	for seed := uint64(1); seed <= 6; seed++ {
		tg := runTG(t, missingDep(), core.DefaultOptions(), seed, 4)
		if tg.RaceCount != 1 {
			t.Fatalf("seed %d: races = %d, want 1\n%s", seed, tg.RaceCount, tg.Reports.String())
		}
	}
}

// TestIgnoreListSuppressesRuntimeNoise: without the __kmp ignore-list the
// runtime's own guest code (dispatch loops reading descriptors) is recorded
// and produces spurious reports — the §IV-A motivation.
func TestIgnoreListSuppressesRuntimeNoise(t *testing.T) {
	withList := runTG(t, missingDep(), core.DefaultOptions(), 3, 4)
	noList := core.DefaultOptions()
	noList.IgnoreList = nil
	without := runTG(t, missingDep(), noList, 3, 4)
	if without.RaceCount <= withList.RaceCount {
		t.Fatalf("ignore-list had no effect: with=%d without=%d",
			withList.RaceCount, without.RaceCount)
	}
}

// TestInstrumentList: restricting instrumentation to one task function
// records nothing racy from the other.
func TestInstrumentList(t *testing.T) {
	opt := core.DefaultOptions()
	opt.InstrumentList = []string{"t1"}
	tg := runTG(t, missingDep(), opt, 3, 4)
	if tg.RaceCount != 0 {
		t.Fatalf("races = %d, want 0 (only one side instrumented)", tg.RaceCount)
	}
}

// TestParallelAnalysisMatchesSequential: the parallelized Fini pass (the
// paper's future-work item) must find exactly the sequential result.
func TestParallelAnalysisMatchesSequential(t *testing.T) {
	seqOpt := core.DefaultOptions()
	seq := runTG(t, listing4(true), seqOpt, 4, 4)
	parOpt := core.DefaultOptions()
	parOpt.AnalysisWorkers = 4
	par := runTG(t, listing4(true), parOpt, 4, 4)
	if seq.RaceCount != par.RaceCount {
		t.Fatalf("parallel analysis diverged: %d vs %d", seq.RaceCount, par.RaceCount)
	}
	if seq.Reports.String() != par.Reports.String() {
		t.Fatal("parallel analysis reports differ from sequential")
	}
}

// TestSegmentGraphShape sanity-checks the structure built for listing4.
func TestSegmentGraphShape(t *testing.T) {
	tg := runTG(t, listing4(true), core.DefaultOptions(), 2, 4)
	g := tg.Graph()
	if !g.Closed() {
		t.Fatal("graph not closed after Fini")
	}
	if g.NumNodes() < 8 {
		t.Fatalf("nodes = %d, implausibly few", g.NumNodes())
	}
	// Exactly one pair of segments labelled task.c:8 / task.c:11 must be
	// concurrent.
	var a, b *core.Segment
	for _, s := range tg.Segments() {
		switch s.Label {
		case "task.c:8":
			a = s
		case "task.c:11":
			b = s
		}
	}
	if a == nil || b == nil {
		t.Fatal("task segments not found")
	}
	if !g.Concurrent(a.Node, b.Node) {
		t.Fatal("task segments not concurrent")
	}
}

// TestFastPoolRecyclingFP documents the known limitation the paper leaves as
// future work (§IV-B): the runtime's internal fast allocator recycles task
// descriptors, and Taskgrind's free-as-no-op redirection cannot reach it.
// When a completed task's payload block is reused for a later sibling while
// the first task is (for analysis purposes) concurrent with the creating
// segment, a false positive on the runtime-pool range appears.
func TestFastPoolRecyclingFP(t *testing.T) {
	b := omp.NewProgram()
	b.Global("sink", 16)

	// Task body reads its payload (a firstprivate value).
	f := b.Func("payload_task", "rec.c")
	f.Ld(8, R1, R0, 0)
	f.LoadSym(R2, "sink")
	f.St(8, R2, 0, R1)
	f.Ret()

	f = b.Func("micro", "rec.c")
	f.Enter(0)
	fn := f
	fill := func(f *gbuild.Func, p uint8) {
		f.Ldi(guest.R9, 7)
		f.St(8, p, 0, guest.R9)
	}
	omp.SingleNowait(f, func() {
		// On a serialized team the first task runs inline at creation
		// and completes, freeing its descriptor to the fast pool; the
		// second alloc recycles it. Under the deferrable annotation the
		// first task is analyzed as concurrent with the continuation
		// that writes the recycled payload -> FP on the pool range.
		omp.AssumeDeferrable(fn, true)
		omp.EmitTask(fn, omp.TaskOpts{Fn: "payload_task", PayloadBytes: 8, Fill: fill})
		omp.EmitTask(fn, omp.TaskOpts{Fn: "payload_task", PayloadBytes: 8, Fill: fill})
		omp.Taskwait(fn)
	})
	f.Leave()

	f = b.Func("main", "rec.c")
	f.Enter(0)
	f.Ldi(R1, 0)
	omp.Parallel(f, "micro", R1, 1)
	f.Ldi(R0, 0)
	f.Hlt(R0)

	tg := runTG(t, b, core.DefaultOptions(), 1, 1)
	found := false
	for _, r := range tg.Reports.Races {
		for _, rg := range r.Ranges {
			if rg.Region == report.RegionPool {
				found = true
			}
		}
	}
	if !found {
		t.Fatalf("expected a runtime-pool false positive (modelled §IV-B limitation); got:\n%s",
			tg.Reports.String())
	}
}

func TestStatsPopulated(t *testing.T) {
	tg := runTG(t, listing4(true), core.DefaultOptions(), 2, 4)
	if tg.Stats.AccessesRecorded == 0 || tg.Stats.SegmentsCreated == 0 || tg.Stats.PairsChecked == 0 {
		t.Fatalf("stats empty: %+v", tg.Stats)
	}
	if tg.ShadowFootprint() == 0 {
		t.Fatal("shadow footprint zero")
	}
}
