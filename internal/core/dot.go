package core

import (
	"fmt"
	"io"
)

// DumpDOT renders the recorded segment graph in Graphviz DOT form — the
// debugging view of the structure Fig. 1 of the paper draws. Segments are
// labelled with their construct location and executing thread; segments
// with recorded accesses are drawn as boxes; racing pairs (after Fini) are
// connected with dashed red edges.
func (tg *Taskgrind) DumpDOT(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "digraph segments {"); err != nil {
		return err
	}
	fmt.Fprintln(w, `  rankdir=TB; node [fontsize=10];`)
	for _, s := range tg.segs {
		shape := "ellipse"
		if !s.Reads.Empty() || !s.Writes.Empty() {
			shape = "box"
		}
		fmt.Fprintf(w, "  n%d [label=\"%s\\nthr %d (r:%d w:%d)\" shape=%s];\n",
			s.Node, s.Label, s.Thread, s.Reads.Len(), s.Writes.Len(), shape)
	}
	for _, s := range tg.segs {
		for _, succ := range tg.graph.Succs(s.Node) {
			fmt.Fprintf(w, "  n%d -> n%d;\n", s.Node, succ)
		}
	}
	// Racing pairs: match reports back to segments by label+thread.
	for _, r := range tg.Reports.Races {
		a := tg.findSeg(r.SegA, r.ThreadA)
		b := tg.findSeg(r.SegB, r.ThreadB)
		if a != nil && b != nil {
			fmt.Fprintf(w, "  n%d -> n%d [dir=none style=dashed color=red];\n",
				a.Node, b.Node)
		}
	}
	_, err := fmt.Fprintln(w, "}")
	return err
}

// findSeg locates a segment by report label and thread (first match).
func (tg *Taskgrind) findSeg(label string, thread int) *Segment {
	for _, s := range tg.segs {
		if s.Label == label && s.Thread == thread &&
			(!s.Reads.Empty() || !s.Writes.Empty()) {
			return s
		}
	}
	return nil
}
