package core

import (
	"repro/internal/ompt"
	"repro/internal/vm"
)

// ClientRequest implements dbi.Tool: it decodes the OMPT request stream and
// builds the segment graph of the execution. Every event that creates a
// segment only adds edges *into* the new segment, so edges always point
// forward in creation order and the graph stays a DAG by construction.
func (tg *Taskgrind) ClientRequest(t *vm.Thread, code int32, args [6]uint64) uint64 {
	ts, _ := t.Tool.(*threadState)
	if ts == nil {
		ts = &threadState{}
		t.Tool = ts
	}
	switch code {
	case ompt.CRParallelBegin:
		tg.regions[args[0]] = &regionInfo{
			forkSeg:  ts.cur,
			fnAddr:   args[2],
			arrivals: make(map[uint64][]*Segment),
		}

	case ompt.CRImplicitBegin:
		ri := tg.regions[args[0]]
		label := "parallel@" + tg.locate(ri.fnAddr)
		// Register the implicit task so taskwait/taskgroup by it (and
		// parent links of its children) resolve.
		tg.taskSeq++
		tg.tasks[args[1]] = &taskInfo{
			id: args[1], flags: ompt.FlagImplicit, fnAddr: ri.fnAddr, seq: tg.taskSeq,
		}
		s := tg.newSegment(t, label, args[1])
		if ri.forkSeg != nil {
			tg.graph.AddEdge(ri.forkSeg.Node, s.Node)
		}
		ts.stack = append(ts.stack, ts.cur)
		ts.cur = s

	case ompt.CRImplicitEnd:
		ri := tg.regions[args[0]]
		ri.lasts = append(ri.lasts, ts.cur)
		ts.cur = ts.stack[len(ts.stack)-1]
		ts.stack = ts.stack[:len(ts.stack)-1]

	case ompt.CRParallelEnd:
		ri := tg.regions[args[0]]
		// Join: the serial continuation happens after every implicit
		// task of the region — this is what realizes Eq. 1 structurally.
		s := tg.newSegment(t, "join@"+tg.locate(ri.fnAddr), 0)
		if ri.forkSeg != nil {
			tg.graph.AddEdge(ri.forkSeg.Node, s.Node)
		}
		for _, last := range ri.lasts {
			tg.graph.AddEdge(last.Node, s.Node)
		}
		ts.cur = s

	case ompt.CRTaskCreate:
		tg.taskSeq++
		ti := &taskInfo{
			id: args[0], parent: args[1], flags: args[2], fnAddr: args[3],
			seq:        tg.taskSeq,
			createSeg:  ts.cur,
			deferrable: tg.assumeDeferrable,
		}
		tg.tasks[ti.id] = ti
		// The parent may be a runtime-internal task Taskgrind has not
		// seen a create event for (the root task): register a stub so
		// taskwait by it still finds its children.
		tg.ensureTask(args[1], ts).children = append(tg.ensureTask(args[1], ts).children, ti.id)
		// Split the creating segment: the continuation is concurrent
		// with the new task.
		if ts.cur != nil {
			cont := tg.newSegment(t, ts.cur.Label, ts.cur.TaskID)
			tg.graph.AddEdge(ts.cur.Node, cont.Node)
			ts.cur = cont
		}

	case ompt.CRTaskDependence:
		if args[3] == ompt.DepMutexinoutset && tg.Opt.IgnoreMutexinoutsetDeps {
			return 1
		}
		if tg.Opt.GlobalDepNamespace {
			// This simulator matches raw dependences itself (see
			// CRTaskDepAddr) instead of trusting sibling matching.
			return 1
		}
		if ti := tg.tasks[args[1]]; ti != nil {
			ti.depPreds = append(ti.depPreds, args[0])
		}

	case ompt.CRTaskDepAddr:
		if !tg.Opt.GlobalDepNamespace {
			return 1
		}
		// Global (cross-parent) dependence matching: the TaskSanitizer
		// mis-modelling. A single last-writer/readers slot per address
		// regardless of the task's parent.
		tg.globalDep(args[0], args[1], args[2])

	case ompt.CRTaskBegin:
		ti := tg.tasks[args[0]]
		if ti == nil {
			return 0
		}
		s := tg.newSegment(t, tg.locate(ti.fnAddr), ti.id)
		ti.firstSeg = s
		if ti.createSeg != nil {
			tg.graph.AddEdge(ti.createSeg.Node, s.Node)
		}
		for _, pid := range ti.depPreds {
			if p := tg.tasks[pid]; p != nil && p.lastSeg != nil {
				tg.graph.AddEdge(p.lastSeg.Node, s.Node)
			}
		}
		ts.stack = append(ts.stack, ts.cur)
		ts.cur = s

	case ompt.CRTaskEnd:
		ti := tg.tasks[args[0]]
		if ti == nil {
			return 0
		}
		ti.lastSeg = ts.cur
		ti.completed = true
		ts.cur = ts.stack[len(ts.stack)-1]
		ts.stack = ts.stack[:len(ts.stack)-1]
		// Undeferred tasks executed inline are *included* in the parent:
		// LLVM fully orders them (§V-A footnote). Unless the program
		// annotated them as semantically deferrable (§V-B), the
		// resumed segment is ordered after the task.
		orderInline := ti.flags&ompt.FlagUndeferred != 0 && !ti.deferrable &&
			!tg.Opt.NoUndeferredOrdering
		if tg.Opt.NoIfZeroOrdering && ti.flags&ompt.FlagIfZero != 0 {
			orderInline = false
		}
		if orderInline && ts.cur != nil {
			cont := tg.newSegment(t, ts.cur.Label, ts.cur.TaskID)
			tg.graph.AddEdge(ts.cur.Node, cont.Node)
			tg.graph.AddEdge(ti.lastSeg.Node, cont.Node)
			ts.cur = cont
		}

	case ompt.CRTaskWaitDepPred:
		if ti := tg.ensureTask(args[0], ts); ti != nil {
			ti.waitDepPreds = append(ti.waitDepPreds, args[1])
		}

	case ompt.CRTaskWaitDepsEnd:
		// OpenMP 5.0 `taskwait depend(...)`: the continuation is ordered
		// only after the selected predecessors — unselected children
		// stay concurrent (the DRB165 race Taskgrind catches).
		wti := tg.ensureTask(args[0], ts)
		if ts.cur == nil {
			return 0
		}
		cont := tg.newSegment(t, ts.cur.Label, ts.cur.TaskID)
		tg.graph.AddEdge(ts.cur.Node, cont.Node)
		for _, pid := range wti.waitDepPreds {
			if p := tg.tasks[pid]; p != nil && p.lastSeg != nil {
				tg.graph.AddEdge(p.lastSeg.Node, cont.Node)
			}
		}
		wti.waitDepPreds = nil
		ts.cur = cont

	case ompt.CRTaskWaitEnd:
		wti := tg.tasks[args[0]]
		if ts.cur == nil {
			return 0
		}
		cont := tg.newSegment(t, ts.cur.Label, ts.cur.TaskID)
		tg.graph.AddEdge(ts.cur.Node, cont.Node)
		if wti != nil {
			for _, cid := range wti.children {
				if c := tg.tasks[cid]; c != nil && c.lastSeg != nil {
					tg.graph.AddEdge(c.lastSeg.Node, cont.Node)
				}
			}
		}
		ts.cur = cont

	case ompt.CRTaskGroupBegin:
		if ti := tg.ensureTask(args[0], ts); ti != nil {
			// Remember where the group started: descendants created
			// after this sequence number belong to it.
			ti.groupStarts = append(ti.groupStarts, tg.taskSeq)
		}

	case ompt.CRTaskGroupEnd:
		owner := tg.tasks[args[0]]
		if ts.cur == nil {
			return 0
		}
		cont := tg.newSegment(t, ts.cur.Label, ts.cur.TaskID)
		tg.graph.AddEdge(ts.cur.Node, cont.Node)
		if owner != nil && len(owner.groupStarts) > 0 && !tg.Opt.NoTaskgroupOrdering {
			start := owner.groupStarts[len(owner.groupStarts)-1]
			owner.groupStarts = owner.groupStarts[:len(owner.groupStarts)-1]
			for _, ti := range tg.tasks {
				if ti.seq > start && ti.lastSeg != nil && tg.isDescendantOf(ti, args[0]) {
					tg.graph.AddEdge(ti.lastSeg.Node, cont.Node)
				}
			}
		}
		ts.cur = cont

	case ompt.CRBarrierBegin:
		ri := tg.regions[args[0]]
		if ri != nil && ts.cur != nil {
			ri.arrivals[args[1]] = append(ri.arrivals[args[1]], ts.cur)
		}

	case ompt.CRBarrierEnd:
		ri := tg.regions[args[0]]
		if ri == nil || ts.cur == nil {
			return 0
		}
		// args[1] is the generation after release; arrivals were
		// recorded under the pre-release generation.
		gen := args[1] - 1
		cont := tg.newSegment(t, ts.cur.Label, ts.cur.TaskID)
		tg.graph.AddEdge(ts.cur.Node, cont.Node)
		for _, a := range ri.arrivals[gen] {
			tg.graph.AddEdge(a.Node, cont.Node)
		}
		ts.cur = cont

	case ompt.CRCriticalAcquire:
		// Taskgrind: mutual exclusion does not order segments for
		// determinacy analysis (paper §VI). Tools with MutexOrders
		// (TaskSanitizer, ROMP) chain critical sections in acquisition
		// order, lockset-style.
		if tg.Opt.MutexOrders && ts.cur != nil {
			if tg.critRel == nil {
				tg.critRel = make(map[uint64]*Segment)
			}
			cont := tg.newSegment(t, ts.cur.Label, ts.cur.TaskID)
			tg.graph.AddEdge(ts.cur.Node, cont.Node)
			if rel := tg.critRel[args[0]]; rel != nil {
				tg.graph.AddEdge(rel.Node, cont.Node)
			}
			ts.cur = cont
		}

	case ompt.CRCriticalRelease:
		if tg.Opt.MutexOrders && ts.cur != nil {
			tg.critRel[args[0]] = ts.cur
			// Split so accesses after the release are not covered by
			// the lock edge.
			cont := tg.newSegment(t, ts.cur.Label, ts.cur.TaskID)
			tg.graph.AddEdge(ts.cur.Node, cont.Node)
			ts.cur = cont
		}

	case ompt.CRMutexAcquire:
		// Guest-level mutexes follow the same §VI policy as critical
		// sections: mutual exclusion does not order segments for
		// determinacy analysis; only MutexOrders tools chain them.
		if tg.Opt.MutexOrders && ts.cur != nil {
			if tg.critRel == nil {
				tg.critRel = make(map[uint64]*Segment)
			}
			cont := tg.newSegment(t, ts.cur.Label, ts.cur.TaskID)
			tg.graph.AddEdge(ts.cur.Node, cont.Node)
			if rel := tg.critRel[args[0]]; rel != nil {
				tg.graph.AddEdge(rel.Node, cont.Node)
			}
			ts.cur = cont
		}

	case ompt.CRMutexRelease:
		if tg.Opt.MutexOrders && ts.cur != nil {
			if tg.critRel == nil {
				tg.critRel = make(map[uint64]*Segment)
			}
			tg.critRel[args[0]] = ts.cur
			cont := tg.newSegment(t, ts.cur.Label, ts.cur.TaskID)
			tg.graph.AddEdge(ts.cur.Node, cont.Node)
			ts.cur = cont
		}

	case ompt.CRRelease, ompt.CRCondSignal, ompt.CRCondBroadcast:
		// Generic happens-before release (Qthreads FEB write, condvar
		// signal): data-flow ordering every tool honors, unlike mutual
		// exclusion — a signalled waiter provably returns after the signal.
		if ts.cur != nil {
			if tg.relSeg == nil {
				tg.relSeg = make(map[uint64]*Segment)
			}
			tg.relSeg[args[0]] = ts.cur
			cont := tg.newSegment(t, ts.cur.Label, ts.cur.TaskID)
			tg.graph.AddEdge(ts.cur.Node, cont.Node)
			ts.cur = cont
		}

	case ompt.CRAcquire, ompt.CRCondWait:
		if ts.cur != nil {
			cont := tg.newSegment(t, ts.cur.Label, ts.cur.TaskID)
			tg.graph.AddEdge(ts.cur.Node, cont.Node)
			if rel := tg.relSeg[args[0]]; rel != nil {
				tg.graph.AddEdge(rel.Node, cont.Node)
			}
			ts.cur = cont
		}

	case ompt.CRAssumeDeferrable:
		if !tg.Opt.IgnoreDeferrableAnnotation {
			tg.assumeDeferrable = args[0] != 0
		}

	case ompt.CRTLSGenBump:
		t.TLSGen++
		if ts.cur != nil {
			// The DTV changed mid-segment: register the new generation
			// on a fresh segment so the §IV-C check sees it.
			cont := tg.newSegment(t, ts.cur.Label, ts.cur.TaskID)
			tg.graph.AddEdge(ts.cur.Node, cont.Node)
			ts.cur = cont
		}
	}
	return 1
}

// globalDep is the TaskSanitizer-style global dependence matcher: one
// last-writers/readers slot per address shared by ALL tasks, so dependences
// between non-sibling tasks wrongly order them (FN on DRB173/175).
func (tg *Taskgrind) globalDep(taskID, addr, kind uint64) {
	if tg.Opt.IgnoreMutexinoutsetDeps && kind == ompt.DepMutexinoutset {
		return
	}
	if tg.globalSlots == nil {
		tg.globalSlots = make(map[uint64]*globalSlot)
	}
	slot := tg.globalSlots[addr]
	if slot == nil {
		slot = &globalSlot{}
		tg.globalSlots[addr] = slot
	}
	ti := tg.tasks[taskID]
	if ti == nil {
		return
	}
	depend := func(ids []uint64) {
		for _, id := range ids {
			if id != taskID {
				ti.depPreds = append(ti.depPreds, id)
				// The tool believes this pair is ordered even when the
				// predecessor has not completed (no real edge exists):
				// exactly the blindness that hides non-sibling races.
				tg.believeOrdered(id, taskID)
			}
		}
	}
	switch kind {
	case ompt.DepIn:
		depend(slot.writers)
		slot.readers = append(slot.readers, taskID)
	default: // every writer kind collapses to inout here
		depend(slot.writers)
		depend(slot.readers)
		slot.writers = []uint64{taskID}
		slot.readers = nil
	}
}

// ensureTask returns the taskInfo, creating a stub for runtime-internal
// tasks Taskgrind has not seen a create event for (the root task).
func (tg *Taskgrind) ensureTask(id uint64, ts *threadState) *taskInfo {
	ti := tg.tasks[id]
	if ti == nil {
		ti = &taskInfo{id: id, seq: tg.taskSeq}
		tg.tasks[id] = ti
	}
	return ti
}

// isDescendantOf walks parent links.
func (tg *Taskgrind) isDescendantOf(ti *taskInfo, ancestor uint64) bool {
	for cur := ti; cur != nil; {
		if cur.parent == ancestor {
			return true
		}
		cur = tg.tasks[cur.parent]
	}
	return false
}

// believeOrdered records a task pair the (mis-modelling) tool considers
// ordered regardless of real runtime ordering.
func (tg *Taskgrind) believeOrdered(a, b uint64) {
	if tg.believed == nil {
		tg.believed = make(map[[2]uint64]bool)
	}
	tg.believed[[2]uint64{a, b}] = true
}
