package core

import (
	"math/bits"
	"sort"
	"sync"

	"repro/internal/dbi"
	"repro/internal/guest"
	"repro/internal/itree"
	"repro/internal/report"
	"repro/internal/seggraph"
)

// Fini implements dbi.Tool: the post-mortem determinacy-race analysis —
// Algorithm 1 of the paper. It closes the segment graph, compares every
// unordered pair of segments, intersects write sets against read∪write sets,
// applies the TLS and stack-frame suppressions, and renders reports.
//
// The pass is embarrassingly parallel over the first segment of each pair;
// Opt.AnalysisWorkers > 1 runs it with a worker pool (the paper's
// future-work item), with a deterministic merge.
func (tg *Taskgrind) Fini(c *dbi.Core) {
	tg.graph.Close()
	tg.buildLifetimeIndex(c)

	// Only segments with any recorded access participate.
	active := make([]*Segment, 0, len(tg.segs))
	for _, s := range tg.segs {
		if !s.Reads.Empty() || !s.Writes.Empty() {
			active = append(active, s)
		}
	}

	workers := tg.Opt.AnalysisWorkers
	if workers <= 1 {
		tg.analyzeSlice(active, 0, len(active), &tg.Reports, &tg.Stats)
		tg.RaceCount = tg.Stats.ConflictPairs
		tg.Reports.Sort()
		return
	}

	// Parallel pass: disjoint slices of the outer loop, merged in order.
	type part struct {
		set   report.Set
		stats Stats
	}
	parts := make([]part, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := len(active) * w / workers
		hi := len(active) * (w + 1) / workers
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			tg.analyzeSlice(active, lo, hi, &parts[w].set, &parts[w].stats)
		}(w, lo, hi)
	}
	wg.Wait()
	for i := range parts {
		tg.Stats.PairsChecked += parts[i].stats.PairsChecked
		tg.Stats.ConflictPairs += parts[i].stats.ConflictPairs
		tg.Stats.SuppressedTLS += parts[i].stats.SuppressedTLS
		tg.Stats.SuppressedStack += parts[i].stats.SuppressedStack
		tg.Stats.ReportsTotal += parts[i].stats.ReportsTotal
		tg.Reports.Races = append(tg.Reports.Races, parts[i].set.Races...)
	}
	tg.RaceCount = tg.Stats.ConflictPairs
	tg.Reports.Sort()
}

// analyzeSlice compares active[lo:hi] against every later active segment.
func (tg *Taskgrind) analyzeSlice(active []*Segment, lo, hi int, out *report.Set, st *Stats) {
	for i := lo; i < hi; i++ {
		s1 := active[i]
		for j := i + 1; j < len(active); j++ {
			s2 := active[j]
			st.PairsChecked++
			if tg.graph.Ordered(s1.Node, s2.Node) {
				continue
			}
			tg.checkPair(s1, s2, out, st)
		}
	}
}

// checkPair implements the body of Algorithm 1 for one unordered pair:
// s1.w ∩ (s2.r ∪ s2.w), plus the symmetric s2.w ∩ s1.r.
func (tg *Taskgrind) checkPair(s1, s2 *Segment, out *report.Set, st *Stats) {
	if tg.believed != nil && s1.TaskID != s2.TaskID &&
		(tg.believed[[2]uint64{s1.TaskID, s2.TaskID}] ||
			tg.believed[[2]uint64{s2.TaskID, s1.TaskID}]) {
		return
	}
	conf := itree.New()
	kinds := ""
	collect := func(a, b *itree.Tree, kind string) {
		found := false
		itree.ForEachIntersection(a, b, func(lo, hi uint64) bool {
			if tg.suppressed(s1, s2, lo, st) {
				return true
			}
			conf.Insert(lo, hi)
			found = true
			return true
		})
		if found {
			if kinds != "" {
				kinds += ","
			}
			kinds += kind
		}
	}
	collect(s1.Writes, s2.Writes, "w/w")
	collect(s1.Writes, s2.Reads, "w/r")
	collect(s2.Writes, s1.Reads, "r/w")
	if conf.Empty() {
		return
	}
	st.ConflictPairs++
	st.ReportsTotal++
	if out.Len() >= tg.Opt.MaxReports {
		return
	}
	r := &report.Race{
		SegA: s1.Label, SegB: s2.Label,
		ThreadA: s1.Thread, ThreadB: s2.Thread,
		Kind: kinds,
	}
	conf.Visit(func(iv itree.Interval) bool {
		rg := report.Range{Lo: iv.Lo, Hi: iv.Hi, Region: classify(iv.Lo)}
		if rg.Region == report.RegionHeap || rg.Region == report.RegionPool {
			if blk := tg.c.FindBlock(iv.Lo); blk != nil {
				rg.BlockAddr = blk.Addr
				rg.BlockSize = blk.Size
				for _, pc := range blk.Stack {
					rg.BlockStack = append(rg.BlockStack, tg.locate(pc))
					if len(rg.BlockStack) >= 4 {
						break
					}
				}
			}
		}
		r.Ranges = append(r.Ranges, rg)
		return true
	})
	out.Add(r)
}

// suppressed applies the §IV-C (TLS) and §IV-D (stack frame) filters to a
// conflicting range starting at lo.
func (tg *Taskgrind) suppressed(s1, s2 *Segment, lo uint64, st *Stats) bool {
	switch classify(lo) {
	case report.RegionTLS:
		if tg.Opt.TLSSuppression && s1.Thread == s2.Thread && s1.TLSGen == s2.TLSGen {
			st.SuppressedTLS++
			return true
		}
	case report.RegionStack:
		// Registered-frame confrontation: an address below both
		// segments' registered frames was created inside each segment
		// (segment-local storage reuse, §IV-D).
		if tg.Opt.StackSuppression && lo < s1.Frame && lo < s2.Frame {
			if w := tg.Opt.StackSuppressWindow; w == 0 ||
				(s1.Frame-lo <= w && s2.Frame-lo <= w) {
				st.SuppressedStack++
				return true
			}
		}
		// Stack-lifetime suppression (this reproduction's extension):
		// if the thread's stack popped above the address between the
		// two segments, the later segment addresses a different object.
		if tg.Opt.StackLifetimeSuppression && tg.objectDiedBetween(s1, s2, lo) {
			st.SuppressedStack++
			return true
		}
	}
	return false
}

// spIndex answers "max event-SP among a thread's segments in a node-id
// range" via a sparse table.
type spIndex struct {
	nodes []seggraph.NodeID
	table [][]uint64 // table[k][i] = max sp over nodes[i : i+2^k]
}

func newSPIndex(nodes []seggraph.NodeID, sps []uint64) *spIndex {
	n := len(nodes)
	idx := &spIndex{nodes: nodes}
	idx.table = append(idx.table, append([]uint64(nil), sps...))
	for k := 1; 1<<k <= n; k++ {
		prev := idx.table[k-1]
		row := make([]uint64, n-(1<<k)+1)
		for i := range row {
			a, b := prev[i], prev[i+(1<<(k-1))]
			if b > a {
				a = b
			}
			row[i] = a
		}
		idx.table = append(idx.table, row)
	}
	return idx
}

// maxBetween returns the max event SP among segments with node id in
// (after, upto].
func (idx *spIndex) maxBetween(after, upto seggraph.NodeID) uint64 {
	lo := sort.Search(len(idx.nodes), func(i int) bool { return idx.nodes[i] > after })
	hi := sort.Search(len(idx.nodes), func(i int) bool { return idx.nodes[i] > upto })
	if lo >= hi {
		return 0
	}
	k := bits.Len(uint(hi-lo)) - 1
	a, b := idx.table[k][lo], idx.table[k][hi-(1<<k)]
	if b > a {
		a = b
	}
	return a
}

// buildLifetimeIndex prepares the per-thread event-SP tables and stack
// bounds.
func (tg *Taskgrind) buildLifetimeIndex(c *dbi.Core) {
	if !tg.Opt.StackLifetimeSuppression {
		return
	}
	tg.lifetimes = make(map[int]*spIndex)
	tg.stackOf = make(map[int][2]uint64)
	for _, t := range c.M.Threads() {
		tg.stackOf[t.ID] = [2]uint64{t.StackLo, t.StackHi}
	}
	perThread := map[int][]*Segment{}
	for _, s := range tg.segs {
		perThread[s.Thread] = append(perThread[s.Thread], s)
	}
	for tid, segs := range perThread {
		nodes := make([]seggraph.NodeID, len(segs))
		sps := make([]uint64, len(segs))
		for i, s := range segs {
			nodes[i] = s.Node
			sps[i] = s.EventSP
		}
		tg.lifetimes[tid] = newSPIndex(nodes, sps)
	}
}

// objectDiedBetween reports that the stack address lo was popped by its
// owning thread between the earlier and the later segment. Events are
// serialized by the big lock, so segment creation order is a global
// timeline; an owner event with SP above lo means lo was outside the live
// stack at that moment — the two segments touched different objects.
func (tg *Taskgrind) objectDiedBetween(s1, s2 *Segment, lo uint64) bool {
	if tg.lifetimes == nil {
		return false
	}
	owner := -1
	for tid, bounds := range tg.stackOf {
		if lo >= bounds[0] && lo < bounds[1] {
			owner = tid
			break
		}
	}
	if owner < 0 {
		return false
	}
	idx := tg.lifetimes[owner]
	if idx == nil {
		return false
	}
	first, second := s1, s2
	if first.Node > second.Node {
		first, second = second, first
	}
	return idx.maxBetween(first.Node, second.Node) > lo
}

// classify maps an address to its memory region.
func classify(addr uint64) report.MemRegion {
	switch {
	case addr < guest.HeapBase:
		return report.RegionGlobal
	case addr < guest.HeapLimit:
		return report.RegionHeap
	case addr < guest.FastPoolLimit:
		return report.RegionPool
	case addr >= guest.TLSBase && addr < guest.TLSLimit:
		return report.RegionTLS
	default:
		return report.RegionStack
	}
}

// nodeFilter is a helper for tests: segments with accesses.
func (tg *Taskgrind) nodeFilter(id seggraph.NodeID) bool {
	s := tg.segs[id]
	return !s.Reads.Empty() || !s.Writes.Empty()
}
