// Package repro is a from-scratch Go reproduction of "Taskgrind:
// Heavyweight Dynamic Binary Instrumentation for Parallel Programs
// Analysis" (Pereira, Stelle, Carribault — Correctness'24 at SC24).
//
// The repository contains the full stack the paper's tool sits on, rebuilt
// as a deterministic simulation:
//
//   - internal/guest, internal/gbuild, internal/gmem, internal/vm: a 64-bit
//     RISC guest machine, binary image format with debug info, a structured
//     assembler, and a deterministic serialized-thread scheduler (the
//     Valgrind execution model).
//   - internal/vex, internal/dbi: the VEX-like IR and the DBI framework —
//     JIT block translation, tool plugins, client requests, function
//     replacement, allocation registry.
//   - internal/omp, internal/ompt, internal/cilk, internal/qthreads: the
//     parallel programming models (task dependences, taskwait/taskgroup,
//     barriers, work stealing, spawn/sync, full/empty bits) with an
//     OMPT-style event bridge.
//   - internal/core: Taskgrind itself — per-segment interval-tree access
//     recording, segment-graph construction, the determinacy-race analysis
//     of Algorithm 1, and the §IV false-positive suppressions.
//   - internal/tools/...: the compared tools — Archer (thread-centric
//     vector clocks), TaskSanitizer and ROMP (segment-graph engines with
//     their published capability gaps).
//   - internal/drb, internal/lulesh: the DataRaceBench/TMB suites of
//     Table I and the LULESH proxy of Table II / Fig 4.
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// paper-versus-measured record. bench_test.go regenerates every table and
// figure as Go benchmarks.
package repro
