package repro

// Translation-store coverage for the lock subsystem: lockgrind is a
// translating tool (it instruments accesses and skips the __kmp* runtime),
// so its units live in the shared store under its own tool identity. Two
// properties are gated here: lock-program runs are bit-identical cold,
// warm and pretranslated under lockgrind on both engines, and
// differently-instrumenting tools that share a display name (the taskgrind
// registry variants) can never adopt each other's translations.

import (
	"bytes"
	"testing"

	"repro/internal/dbi"
	"repro/internal/drb"
	"repro/internal/harness"
	"repro/internal/tools/toolreg"
	"repro/internal/tstore"
)

// lgRun executes one lock benchmark under a registry tool with the given
// store configuration and fingerprints the outcome.
func lgRun(t *testing.T, bm drb.Benchmark, toolName, engine string, s harness.Setup) (runPrint, *harness.Instance) {
	t.Helper()
	tl, _, err := toolreg.Make(toolName)
	if err != nil {
		t.Fatal(err)
	}
	out := &bytes.Buffer{}
	s.Tool, s.Stdout, s.Seed, s.Threads = tl, out, 1, 4
	s.Engine = engine
	res, inst, err := harness.BuildAndRun(bm.Build(), s)
	if err != nil {
		t.Fatalf("%s %s: %v", bm.Name, engine, err)
	}
	if res.Err != nil {
		t.Fatalf("%s %s: run failed: %v", bm.Name, engine, res.Err)
	}
	if inst.Pretrans != nil {
		inst.Pretrans.Wait()
	}
	report, _ := toolreg.Render(tl)
	return runPrint{
		report: report,
		stdout: out.String(),
		gmem:   gmemFold(inst),
		state:  inst.M.StateDigest(),
		blocks: inst.M.BlocksExecuted,
		instrs: inst.M.InstrsExecuted,
		exit:   inst.M.ExitCode(),
		dirty:  inst.Core.DirtyCalls,
		acc:    inst.Core.AccessesDelivered,
		seams:  inst.Core.ExtendSeams,
	}, inst
}

// TestStoreEquivalenceLocks: lock programs under lockgrind, on both
// engines — a cold run, a warm run from a filled store, and a
// pretranslated run produce bit-identical reports and machine states.
func TestStoreEquivalenceLocks(t *testing.T) {
	names := []string{"lock-100-mutex-counter", "lock-103-lock-order", "lock-104-condvar"}
	for _, eng := range []string{dbi.EngineIR, dbi.EngineCompiled} {
		for _, name := range names {
			bm, ok := drb.ByName(name)
			if !ok {
				t.Fatalf("missing benchmark %s", name)
			}
			cold, _ := lgRun(t, bm, "lockgrind", eng, harness.Setup{})

			cache := tstore.NewCache("")
			fill, _ := lgRun(t, bm, "lockgrind", eng, harness.Setup{TStore: cache})
			diffPrints(t, name+"/"+eng+"/lock-fill", cold, fill)

			warm, warmInst := lgRun(t, bm, "lockgrind", eng, harness.Setup{TStore: cache})
			diffPrints(t, name+"/"+eng+"/lock-warm", cold, warm)
			if warmInst.Core.Translations != 0 {
				t.Fatalf("%s %s: warm lockgrind run still translated %d blocks",
					name, eng, warmInst.Core.Translations)
			}
			if warmInst.Core.SharedHits == 0 {
				t.Fatalf("%s %s: warm lockgrind run adopted nothing", name, eng)
			}

			pre, _ := lgRun(t, bm, "lockgrind", eng, harness.Setup{
				TStore:       tstore.NewCache(""),
				Pretranslate: true,
				NewTool: func() dbi.Tool {
					tl, _, err := toolreg.Make("lockgrind")
					if err != nil {
						panic(err)
					}
					return tl
				},
			})
			diffPrints(t, name+"/"+eng+"/lock-pretranslated", cold, pre)
		}
	}
}

// TestStoreInvalidationToolIdentity: translation units are keyed by the
// tool's registry identity, not its display name. The taskgrind variants
// (taskgrind, taskgrind-naive) share Name() == "taskgrind" but instrument
// differently; against one shared store the second variant must translate
// everything itself, while a repeat run of the first adopts its own units.
// lockgrind, a third instrumenting identity, is isolated the same way.
func TestStoreInvalidationToolIdentity(t *testing.T) {
	bm, ok := drb.ByName("lock-100-mutex-counter")
	if !ok {
		t.Fatal("missing benchmark")
	}
	cache := tstore.NewCache("")

	_, first := lgRun(t, bm, "taskgrind", dbi.EngineCompiled, harness.Setup{TStore: cache})
	if first.Core.Translations == 0 {
		t.Fatal("priming run translated nothing")
	}

	// Same display name, different instrumentation: nothing adopted.
	_, naive := lgRun(t, bm, "taskgrind-naive", dbi.EngineCompiled, harness.Setup{TStore: cache})
	if naive.Core.SharedHits != 0 {
		t.Fatalf("taskgrind-naive adopted %d of taskgrind's units", naive.Core.SharedHits)
	}
	if naive.Core.Translations == 0 {
		t.Fatal("taskgrind-naive translated nothing")
	}

	// Third identity: lockgrind also starts cold on the same store.
	_, lg := lgRun(t, bm, "lockgrind", dbi.EngineCompiled, harness.Setup{TStore: cache})
	if lg.Core.SharedHits != 0 {
		t.Fatalf("lockgrind adopted %d units from other tools", lg.Core.SharedHits)
	}

	// And each identity's own units stay warm.
	for _, toolName := range []string{"taskgrind", "taskgrind-naive", "lockgrind"} {
		_, again := lgRun(t, bm, toolName, dbi.EngineCompiled, harness.Setup{TStore: cache})
		if again.Core.Translations != 0 {
			t.Fatalf("repeat %s run went cold: %d translations", toolName, again.Core.Translations)
		}
	}
}
