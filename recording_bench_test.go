package repro

// Recording-overhead benchmark: the cost of recording a run into the
// columnar store (internal/obs/store) relative to the in-memory ring sink
// it replaces as the default trace destination. Both arms run the same
// Taskgrind LULESH workload as BenchmarkObservability with the full obs
// stack attached; the only difference is where trace events land. `make
// bench-rec` writes the comparison to the "recording" section of
// BENCH_perf.json; TestRecordingOverheadRegression guards the < 2x
// acceptance bound.

import (
	"encoding/json"
	"os"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/lulesh"
	"repro/internal/obs"
	"repro/internal/obs/store"
)

// recArm is one trace-sink configuration under measurement.
type recArm struct {
	Name string `json:"name"`

	Runs        int     `json:"runs"`
	WallSeconds float64 `json:"wall_seconds"`
	Events      uint64  `json:"events"`
	Instrs      uint64  `json:"instrs"`

	// Store-only accounting.
	FlushedBatches uint64  `json:"flushed_batches,omitempty"`
	DroppedEvents  uint64  `json:"dropped_events,omitempty"`
	StoreBytes     int64   `json:"store_bytes,omitempty"`
	OverheadVsRing float64 `json:"overhead_vs_ring,omitempty"`
}

// runRecordingArm executes the benchmark workload once with the given trace
// sink attached and returns the run's wall seconds plus event/instr counts.
func runRecordingArm(tb testing.TB, sink obs.Sink) (wall float64, events, instrs uint64) {
	tb.Helper()
	p := lulesh.Params{S: 8, TEL: 4, TNL: 4, Iters: 2}
	bb, err := lulesh.Build(p)
	if err != nil {
		tb.Fatal(err)
	}
	tg := core.New(core.DefaultOptions())
	reg := obs.NewRegistry()
	tr := obs.NewTracer(sink)
	prof := obs.NewProfiler(64)
	res, inst, err := harness.BuildAndRun(bb, harness.Setup{
		Tool: tg, Seed: 1, Threads: 4, Slice: 1000,
		Obs: &obs.Hooks{Metrics: reg, Tracer: tr, Prof: prof},
	})
	if err != nil || res.Err != nil {
		tb.Fatal(err, res.Err)
	}
	if err := tr.Close(); err != nil {
		tb.Fatal(err)
	}
	return res.Wall.Seconds(), tr.Events(), inst.M.InstrsExecuted
}

// storeDirSize sums the segment sizes of a store directory.
func storeDirSize(tb testing.TB, dir string) int64 {
	tb.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		tb.Fatal(err)
	}
	var n int64
	for _, e := range ents {
		fi, err := e.Info()
		if err != nil {
			tb.Fatal(err)
		}
		n += fi.Size()
	}
	return n
}

// BenchmarkRecording compares the ring sink against the columnar store sink
// on the observability workload. The "recording" section of BENCH_perf.json
// records the overhead ratio the < 2x acceptance criterion is stated
// against.
func BenchmarkRecording(b *testing.B) {
	arms := []*recArm{{Name: "ring"}, {Name: "store"}}
	done := 0
	for _, arm := range arms {
		arm := arm
		b.Run(arm.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				var sink obs.Sink
				var w *store.Writer
				var rw *store.RunWriter
				dir := b.TempDir()
				if arm.Name == "ring" {
					sink = obs.NewRingSink(1 << 16)
				} else {
					var err error
					w, err = store.Create(dir)
					if err != nil {
						b.Fatal(err)
					}
					rw = w.Begin(store.RunHeader{
						Prog: "lulesh", Tool: "taskgrind", Seed: 1, Threads: 4,
					})
					sink = store.NewStoreSink(rw)
				}
				wall, events, instrs := runRecordingArm(b, sink)
				arm.Runs++
				arm.WallSeconds += wall
				arm.Events += events
				arm.Instrs += instrs
				if rw != nil {
					if err := rw.Finish(); err != nil {
						b.Fatal(err)
					}
					flushed, dropped, _ := w.Stats()
					arm.FlushedBatches += flushed
					arm.DroppedEvents += dropped
					if err := w.Close(); err != nil {
						b.Fatal(err)
					}
					arm.StoreBytes += storeDirSize(b, dir)
				}
			}
			b.ReportMetric(arm.WallSeconds/float64(arm.Runs), "wall-sec/run")
			b.ReportMetric(float64(arm.Events)/float64(arm.Runs), "events/run")
			done++
		})
	}
	if done < len(arms) {
		return // partial -bench filter: nothing comparable to record
	}
	ring, st := arms[0], arms[1]
	st.OverheadVsRing = (st.WallSeconds / float64(st.Runs)) /
		(ring.WallSeconds / float64(ring.Runs))
	writePerfSection(b, "recording", struct {
		Suite     string    `json:"suite"`
		Tool      string    `json:"tool"`
		Threads   int       `json:"threads"`
		Seed      uint64    `json:"seed"`
		Criterion string    `json:"criterion"`
		Timestamp string    `json:"timestamp"`
		Arms      []*recArm `json:"arms"`
	}{
		Suite: "lulesh-s8", Tool: "taskgrind", Threads: 4, Seed: 1,
		Criterion: "overhead_vs_ring is the per-run wall-clock ratio of " +
			"tracing into the columnar run store (batched encode + segment " +
			"append) against the in-memory ring sink; the acceptance bound " +
			"is < 2x.",
		Timestamp: time.Now().UTC().Format(time.RFC3339),
		Arms:      arms,
	})
}

// TestRecordingOverheadRegression is the recording half of the PERF_GUARD
// gate: it re-measures the store-vs-ring wall-clock ratio (best of three
// fresh runs per arm, so machine noise cannot fail it) and fails if
// recording costs 2x or more — the kind of blowup a per-event allocation or
// an unbatched encode on the trace fast path would cause.
func TestRecordingOverheadRegression(t *testing.T) {
	if os.Getenv("PERF_GUARD") != "1" {
		t.Skip("set PERF_GUARD=1 to run the recording-overhead regression gate")
	}
	best := func(runOnce func() float64) float64 {
		b := runOnce()
		for i := 0; i < 2; i++ {
			if w := runOnce(); w < b {
				b = w
			}
		}
		return b
	}
	ringWall := best(func() float64 {
		wall, _, _ := runRecordingArm(t, obs.NewRingSink(1<<16))
		return wall
	})
	storeWall := best(func() float64 {
		w, err := store.Create(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		rw := w.Begin(store.RunHeader{Prog: "lulesh", Tool: "taskgrind", Seed: 1, Threads: 4})
		wall, _, _ := runRecordingArm(t, store.NewStoreSink(rw))
		if err := rw.Finish(); err != nil {
			t.Fatal(err)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		return wall
	})
	ratio := storeWall / ringWall
	t.Logf("recording overhead: store %.3fs / ring %.3fs = %.2fx", storeWall, ringWall, ratio)
	if ratio >= 2.0 {
		t.Errorf("recording overhead %.2fx >= 2x acceptance bound", ratio)
	}
	// Sanity-dump the recorded baseline if one exists, so a failure log
	// shows both the live measurement and what bench-rec last recorded.
	if data, err := os.ReadFile("BENCH_perf.json"); err == nil {
		var doc struct {
			Recording struct {
				Arms []recArm `json:"arms"`
			} `json:"recording"`
		}
		if json.Unmarshal(data, &doc) == nil {
			for _, arm := range doc.Recording.Arms {
				if arm.OverheadVsRing != 0 {
					t.Logf("recorded baseline overhead_vs_ring: %.2fx", arm.OverheadVsRing)
				}
			}
		}
	}
}
