package repro

// Daemon throughput benchmark and regression gate. BenchmarkServe pushes a
// stream of small analysis jobs through an in-process serve.Server — the
// same worker pool, admission control and retry machinery taskgrindd runs —
// and records jobs/sec plus the p99 queue wait into the "serve" section of
// $PERF_BENCH_OUT. TestServeThroughputRegression (PERF_GUARD=1) re-measures
// against the recorded baseline, so an accidental serialization in the
// daemon's hot path (a lock held across a run, a per-job rebuild of shared
// state) fails `make check`.

import (
	"encoding/json"
	"errors"
	"os"
	"testing"
	"time"

	"repro/internal/serve"
)

// serveJobsPerSec runs n small jobs (a task.c seed sweep) through a fresh
// server and returns jobs/sec and the p99 queue wait.
func serveJobsPerSec(tb testing.TB, n, workers int) (jobsPerSec float64, p99Wait time.Duration) {
	tb.Helper()
	s := serve.New(serve.Options{Workers: workers, QueueDepth: n + 8})
	if err := s.Start(); err != nil {
		tb.Fatal(err)
	}
	defer s.Stop()
	start := time.Now()
	ids := make([]string, 0, n)
	for i := 0; i < n; i++ {
		jobs, err := s.Submit(serve.JobSpec{Prog: "task.c", Seed: uint64(i%31 + 1)})
		if err != nil {
			tb.Fatal(err)
		}
		ids = append(ids, jobs[0].ID)
	}
	deadline := time.Now().Add(120 * time.Second)
	for _, id := range ids {
		for {
			v, err := s.Job(id)
			if err != nil {
				tb.Fatal(err)
			}
			if v.Status.Terminal() {
				if v.Status != serve.StatusDone {
					tb.Fatalf("bench job %s ended %s: %+v", id, v.Status, v.Result)
				}
				break
			}
			if time.Now().After(deadline) {
				tb.Fatalf("bench job %s stuck in %s", id, v.Status)
			}
			time.Sleep(time.Millisecond)
		}
	}
	wall := time.Since(start).Seconds()
	return float64(n) / wall, serve.Percentile(s.QueueWaits(), 99)
}

func BenchmarkServe(b *testing.B) {
	const workers = 8
	jps, p99 := 0.0, time.Duration(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		jps, p99 = serveJobsPerSec(b, 200, workers)
	}
	b.StopTimer()
	b.ReportMetric(jps, "jobs/sec")
	b.ReportMetric(float64(p99)/1e6, "p99-queue-wait-ms")
	writePerfSection(b, "serve", struct {
		Suite          string  `json:"suite"`
		Jobs           int     `json:"jobs"`
		Workers        int     `json:"workers"`
		JobsPerSec     float64 `json:"jobs_per_sec"`
		P99QueueWaitMS float64 `json:"p99_queue_wait_ms"`
		Criterion      string  `json:"criterion"`
		Timestamp      string  `json:"timestamp"`
	}{
		Suite: "task.c-seed-sweep", Jobs: 200, Workers: workers,
		JobsPerSec: jps, P99QueueWaitMS: float64(p99) / 1e6,
		Criterion: "jobs_per_sec is end-to-end daemon throughput on 200 " +
			"small jobs (submit through terminal state, workers=8); " +
			"p99_queue_wait_ms is the 99th-percentile admission-to-start " +
			"wait under that load.",
		Timestamp: time.Now().UTC().Format(time.RFC3339),
	})
}

// TestServeThroughputRegression is the serve section of the PERF_GUARD
// gate: re-measure daemon throughput (best of three, so machine noise
// cannot fail it) and fail if it drops below 1/1.5 of the recorded
// baseline.
func TestServeThroughputRegression(t *testing.T) {
	if os.Getenv("PERF_GUARD") != "1" {
		t.Skip("set PERF_GUARD=1 to run the serve-throughput regression gate")
	}
	path := os.Getenv("PERF_BENCH_OUT")
	if path == "" {
		path = "BENCH_perf.json"
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("no baseline (run `make bench-serve` first): %v", err)
	}
	var doc struct {
		Serve struct {
			JobsPerSec float64 `json:"jobs_per_sec"`
		} `json:"serve"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("parse %s: %v", path, err)
	}
	if doc.Serve.JobsPerSec == 0 {
		t.Fatalf("no serve baseline in %s (run `make bench-serve`)", path)
	}
	best := 0.0
	for i := 0; i < 3; i++ {
		jps, _ := serveJobsPerSec(t, 100, 8)
		if jps > best {
			best = jps
		}
	}
	floor := doc.Serve.JobsPerSec / 1.5
	t.Logf("serve throughput: measured best %.1f jobs/sec, baseline %.1f, floor %.1f",
		best, doc.Serve.JobsPerSec, floor)
	if best < floor {
		t.Errorf("daemon throughput regressed: %.1f jobs/sec < floor %.1f (baseline %.1f)",
			best, floor, doc.Serve.JobsPerSec)
	}
}

// TestServeLoad is the `make loadtest` entry: thousands of small
// concurrent jobs through one daemon, all of which must settle with the
// server healthy. It complements the chaos soak (internal/serve), which
// mixes fault injection in; this one is pure volume.
func TestServeLoad(t *testing.T) {
	if os.Getenv("LOADTEST") != "1" && testing.Short() {
		t.Skip("set LOADTEST=1 (or run without -short) for the volume load test")
	}
	n := 2000
	if os.Getenv("LOADTEST") == "" {
		n = 500 // default `go test ./...` keeps the volume moderate
	}
	s := serve.New(serve.Options{Workers: 8, QueueDepth: 64})
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	defer s.Stop()
	ids := make([]string, 0, n)
	for i := 0; i < n; i++ {
		for {
			jobs, err := s.Submit(serve.JobSpec{Prog: "task.c", Seed: uint64(i%97 + 1)})
			if errors.Is(err, serve.ErrQueueFull) {
				time.Sleep(time.Millisecond) // backpressure: retry later
				continue
			}
			if err != nil {
				t.Fatal(err)
			}
			ids = append(ids, jobs[0].ID)
			break
		}
	}
	deadline := time.Now().Add(180 * time.Second)
	done := 0
	for _, id := range ids {
		for {
			v, err := s.Job(id)
			if err != nil {
				t.Fatal(err)
			}
			if v.Status.Terminal() {
				if v.Status != serve.StatusDone {
					t.Fatalf("load job %s ended %s: %+v", id, v.Status, v.Result)
				}
				done++
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("load job %s stuck in %s (%d/%d done)", id, v.Status, done, n)
			}
			time.Sleep(time.Millisecond)
		}
	}
	if !s.Healthy() {
		t.Fatal("server unhealthy after load")
	}
	snap := s.MetricsSnapshot()
	if got := snap.Counter("serve_jobs_completed_total"); got != uint64(n) {
		t.Fatalf("completed counter %d, want %d", got, n)
	}
	t.Logf("load: %d jobs done, max queue wait %s", done,
		time.Duration(int64(snap.Gauge("serve_queue_wait_max_seconds")*1e9)))
}
