GO ?= go

.PHONY: check vet build test race race-batch replay-determinism tstore-equiv store-chaos lock-matrix bench-obs bench-perf bench-perf-smoke bench-rec bench-serve loadtest perf-guard query-smoke fuzz clean

# The full gate: vet, build, tests under the race detector (including the
# focused batched-delivery pass), the replay-determinism gate, the
# translation-store equivalence gate, the multi-process store chaos soak,
# the fuzzer smoke run, both benchmark smoke runs (BENCH_obs.json;
# bench-perf-smoke does not overwrite the recorded BENCH_perf.json), the
# record-and-query smoke, the daemon load + chaos-soak tests, the six-tool
# lock verdict-matrix gate, and the hot-path + checkpoint-overhead +
# recording-overhead + serve-throughput + warm-store + cross-process-warm
# regression guards against the recorded baseline.
check: vet build race race-batch replay-determinism tstore-equiv store-chaos lock-matrix fuzz bench-obs bench-perf-smoke query-smoke loadtest perf-guard

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Focused -race pass over the batched-delivery surface: the delivery
# differential suite, the delivery/scheduler allocation guards, the golden
# reports, and the extend-profile agreement tests. Fresh run (-count=1) so
# the gate never passes on a cached result.
race-batch:
	$(GO) test -race -count=1 -run 'TestDelivery|TestGoldenReports|TestProfileExtend|TestPick|TestSoleRunnable|TestSliceLoop' ./internal/dbi ./internal/vm ./internal/tools/golden

# Replay-determinism gate: checkpoint/resume fuzz over the Table I programs
# on both engines, the supervisor's crash-reproduction and fallback paths,
# and the CLI's byte-for-byte -replay round trip. Fresh run (-count=1) so
# the gate never passes on a cached result.
replay-determinism:
	$(GO) test -count=1 -run 'TestCheckpointResume|TestSupervisor|TestBisect|TestSupervisedReplay|TestJournal' ./internal/harness ./internal/vm ./internal/snapshot
	$(GO) test -count=1 -run 'TestReplayToken|TestOnPanicFallback' ./cmd/taskgrind

# Translation-store equivalence gate: the tstore unit suite (encode
# roundtrips, persistent-tier invalidation, torn-tail recovery) under -race,
# plus the store-equivalence differential smoke — cold vs warm vs
# pretranslated runs bit-identical on both engines, the crash-report and
# invalidation cases, the 16-worker shared-store race test and the sweep
# amortization counter check. Fresh run (-count=1) so the gate never passes
# on a cached result.
tstore-equiv:
	$(GO) test -race -count=1 ./internal/tstore
	$(GO) test -race -count=1 -run 'TestStoreEquivalence|TestStoreInvalidation|TestStoreConcurrentWorkers|TestSweepAmortization|TestJobsShareTranslationStore' . ./internal/serve

# Multi-process store chaos soak, race-enabled: N taskgrind processes plus
# an in-process daemon share one -tcache-dir while victims are SIGKILLed
# mid-run and the rest run under injected storage faults (EIO, ENOSPC,
# short writes, bit flips, lock starvation). Every surviving run must be
# byte-identical to a storeless cold run, the eviction cap must hold, and
# the directory must stay warm-adoptable afterwards. STORE_CHAOS=1 scales
# the fleet up. Fresh run (-count=1) so the gate never passes on a cached
# result.
store-chaos:
	$(GO) test -race -count=1 -run 'TestStoreChaosSoak' .

# Lock verdict-matrix gate: the six-tool x lock-scenario acceptance matrix
# (expected verdict per cell on every default seed, byte-identical reports
# across engines, replay-token reproduction of every reporting cell), the
# lock-scenario goldens under both delivery modes and engines, the
# scheduler-neutrality pin for lock-free programs, and the lock-fault
# injection determinism/journal/sweep suite. Fresh run (-count=1) so the
# gate never passes on a cached result.
lock-matrix:
	$(GO) test -count=1 -run 'TestVerdictMatrix|TestGoldenLockReports|TestLockSchedulerUnperturbed|TestLockFault' ./internal/tools/golden ./internal/harness ./internal/explore .

# Short fuzzing smoke runs over the untrusted-input surfaces: the
# assembler, the instruction decoder, and the translation-store frame
# protocol (the scan that untrusted cache files pass through). Go runs one
# -fuzz package at a time, hence three invocations.
fuzz:
	$(GO) test -run '^$$' -fuzz 'FuzzAssemble' -fuzztime 5s ./internal/gasm
	$(GO) test -run '^$$' -fuzz 'FuzzDecode$$' -fuzztime 5s ./internal/guest
	$(GO) test -run '^$$' -fuzz 'FuzzFrameScan' -fuzztime 5s ./internal/tstore

# One short iteration of the observability benchmark; the metrics snapshot
# of the full-stack variant lands in BENCH_obs.json.
bench-obs:
	OBS_BENCH_OUT=BENCH_obs.json $(GO) test -run '^$$' -bench 'BenchmarkObservability' -benchtime 1x .

# Engine comparison on the Table I suite (IR interpreter vs compiled
# micro-op engine, with and without superblock extension), the
# tool-delivery comparison (per-event vs batched under memcheck), the
# checkpoint/journal overhead arms, the lock-contention comparison, and
# the translation-store contention comparison (cold vs warm-in-memory vs
# warm-across-process vs warm under flock contention); writes the
# "engines", "tool_delivery", "robustness", "locks" and "tstore" sections
# of BENCH_perf.json. Longer -benchtime
# accumulates more samples and tightens the numbers.
bench-perf:
	PERF_BENCH_OUT=BENCH_perf.json $(GO) test -run '^$$' -bench 'BenchmarkPerfEngines|BenchmarkToolDelivery|BenchmarkRobustness|BenchmarkLockContention|BenchmarkTStoreContention' -benchtime 10x .

# Smoke run for the gate: exercises every arm once, no JSON output.
bench-perf-smoke:
	$(GO) test -run '^$$' -bench 'BenchmarkPerfEngines|BenchmarkToolDelivery|BenchmarkRobustness|BenchmarkRecording|BenchmarkLockContention|BenchmarkTStoreContention' -benchtime 1x .

# Recording-overhead comparison (ring sink vs columnar run store on the
# observability workload); writes the "recording" section of BENCH_perf.json.
bench-rec:
	PERF_BENCH_OUT=BENCH_perf.json $(GO) test -run '^$$' -bench 'BenchmarkRecording' -benchtime 3x .

# Daemon throughput (jobs/sec + p99 queue wait on a 200-job task.c sweep
# through the serve worker pool); writes the "serve" section of
# BENCH_perf.json.
bench-serve:
	PERF_BENCH_OUT=BENCH_perf.json $(GO) test -run '^$$' -bench 'BenchmarkServe' -benchtime 3x .

# Daemon robustness under load: the pure-volume load test (thousands of
# small jobs; LOADTEST=1 raises the volume) and the chaos soak (hundreds of
# concurrent fault-injected jobs; the daemon must stay healthy, classify
# every failure with a replay token, and reproduce crashes byte-for-byte on
# token re-submission). Fresh run (-count=1) so the gate never passes on a
# cached result.
loadtest:
	LOADTEST=1 $(GO) test -count=1 -run 'TestServeLoad' .
	$(GO) test -count=1 -run 'TestChaosSoak' ./internal/serve

# Record-and-query smoke: a short sweep into a throwaway store, then every
# query verb against it. Exercises the CLI end to end, including the golden
# and cross-seed-aggregation acceptance tests. Fresh run (-count=1) so the
# gate never passes on a cached result.
query-smoke:
	$(GO) test -count=1 -run 'TestQueryGolden|TestQueryCLISmoke|TestExploreRecordAggBitIdentical' ./cmd/taskgrind

# Regression guards: re-measures the compiled engine's hot ns/block (fails
# on >20% regression), the ckpt-16 checkpoint overhead ratio (fails at
# 1.5x the recorded ratio), daemon throughput (fails below 1/1.5 of the
# recorded jobs/sec), the warm translation store's end-to-end speedup
# (fails unless warm compiled beats IR end to end, recorded and fresh) and
# the cross-process warm start (fails if a fresh process sweeping over a
# primed cache directory costs more than 1.2x one already warm in memory)
# against the baseline recorded in BENCH_perf.json by `make bench-perf` /
# `make bench-serve` (best-of-3, so only a real slowdown trips any of them).
perf-guard:
	PERF_GUARD=1 $(GO) test -count=1 -run 'TestHotPerfRegression|TestCkptOverheadRegression|TestRecordingOverheadRegression|TestServeThroughputRegression|TestWarmStoreE2ERegression|TestWarmCrossProcessRegression' .

clean:
	rm -f BENCH_obs.json BENCH_perf.json
