GO ?= go

.PHONY: check vet build test race bench-obs clean

# The full gate: vet, build, tests under the race detector, and the
# observability benchmark smoke run (writes BENCH_obs.json).
check: vet build race bench-obs

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# One short iteration of the observability benchmark; the metrics snapshot
# of the full-stack variant lands in BENCH_obs.json.
bench-obs:
	OBS_BENCH_OUT=BENCH_obs.json $(GO) test -run '^$$' -bench 'BenchmarkObservability' -benchtime 1x .

clean:
	rm -f BENCH_obs.json
