GO ?= go

.PHONY: check vet build test race bench-obs fuzz clean

# The full gate: vet, build, tests under the race detector, the fuzzer smoke
# run, and the observability benchmark smoke run (writes BENCH_obs.json).
check: vet build race fuzz bench-obs

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Short fuzzing smoke runs over the untrusted-input surfaces: the assembler
# and the instruction decoder. Go runs one -fuzz package at a time, hence two
# invocations.
fuzz:
	$(GO) test -run '^$$' -fuzz 'FuzzAssemble' -fuzztime 5s ./internal/gasm
	$(GO) test -run '^$$' -fuzz 'FuzzDecode$$' -fuzztime 5s ./internal/guest

# One short iteration of the observability benchmark; the metrics snapshot
# of the full-stack variant lands in BENCH_obs.json.
bench-obs:
	OBS_BENCH_OUT=BENCH_obs.json $(GO) test -run '^$$' -bench 'BenchmarkObservability' -benchtime 1x .

clean:
	rm -f BENCH_obs.json
