GO ?= go

.PHONY: check vet build test race bench-obs bench-perf bench-perf-smoke fuzz clean

# The full gate: vet, build, tests under the race detector, the fuzzer smoke
# run, and both benchmark smoke runs (BENCH_obs.json; bench-perf-smoke does
# not overwrite the recorded BENCH_perf.json).
check: vet build race fuzz bench-obs bench-perf-smoke

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Short fuzzing smoke runs over the untrusted-input surfaces: the assembler
# and the instruction decoder. Go runs one -fuzz package at a time, hence two
# invocations.
fuzz:
	$(GO) test -run '^$$' -fuzz 'FuzzAssemble' -fuzztime 5s ./internal/gasm
	$(GO) test -run '^$$' -fuzz 'FuzzDecode$$' -fuzztime 5s ./internal/guest

# One short iteration of the observability benchmark; the metrics snapshot
# of the full-stack variant lands in BENCH_obs.json.
bench-obs:
	OBS_BENCH_OUT=BENCH_obs.json $(GO) test -run '^$$' -bench 'BenchmarkObservability' -benchtime 1x .

# Engine comparison on the Table I suite (IR interpreter vs compiled
# micro-op engine, with and without superblock extension); writes the
# arms and speedups to BENCH_perf.json. Longer -benchtime accumulates more
# samples and tightens the numbers.
bench-perf:
	PERF_BENCH_OUT=BENCH_perf.json $(GO) test -run '^$$' -bench 'BenchmarkPerfEngines' -benchtime 10x .

# Smoke run for the gate: exercises all three arms once, no JSON output.
bench-perf-smoke:
	$(GO) test -run '^$$' -bench 'BenchmarkPerfEngines' -benchtime 1x .

clean:
	rm -f BENCH_obs.json BENCH_perf.json
