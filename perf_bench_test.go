package repro

// Engine throughput benchmark: the measurement behind the compiled-engine
// work (pre-lowered micro-ops + block chaining + optional superblock
// extension). Each arm runs the whole Table I microbenchmark suite under the
// nop tool and reports guest blocks/sec and instrs/sec; `make bench-perf`
// writes the comparison (with speedups over the IR interpreter) to
// $PERF_BENCH_OUT as BENCH_perf.json.
//
// Three throughput figures are reported per arm:
//
//   - instrs_per_sec: end-to-end, dividing by the full run wall clock. On
//     this suite that clock is dominated by translation — every program is a
//     few hundred instructions, a fresh Core per run, each block executed
//     about three times — so both engines converge toward translator speed.
//   - exec_instrs_per_sec: wall clock minus the Core's measured translate
//     and compile time. Closer to engine speed, but still carries the
//     shared runtime the suite exercises (OpenMP host calls, scheduler,
//     guest memory), which is identical across engines.
//   - hot_instrs_per_sec: after a run warms the translation caches, the
//     suite's cached compute/branch blocks are re-executed directly through
//     the engine, hot. This isolates what the compiled-engine work changes —
//     how fast an engine retires already-translated code — on the suite's
//     real translated blocks rather than a synthetic loop. The >= 2x
//     acceptance criterion is stated against this figure (speedup_vs_ir);
//     long-running guests spend their time here.
//
// Both engines execute bit-identical work in every phase (the differential
// suite proves behavioral equality), so each comparison is apples-to-apples.

import (
	"encoding/json"
	"io"
	"os"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/dbi"
	"repro/internal/drb"
	"repro/internal/guest"
	"repro/internal/harness"
	"repro/internal/tstore"
	"repro/internal/vex"
	"repro/internal/vm"
)

// perfArm is one engine configuration under measurement.
type perfArm struct {
	Name   string `json:"name"`
	Engine string `json:"engine"`
	Extend int    `json:"extend"`
	// Warm runs every measured pass against a translation store primed by
	// one untimed pass: the steady state of a long-lived daemon or a
	// multi-seed sweep, where translation cost is already amortized.
	Warm bool `json:"warm,omitempty"`
	// Pretranslate starts each run cold but with the ahead-of-execution
	// pipeline filling the store on spare cores while the guest executes.
	Pretranslate bool `json:"pretranslate,omitempty"`

	Blocks           uint64  `json:"blocks"`
	Instrs           uint64  `json:"instrs"`
	WallSeconds      float64 `json:"wall_seconds"`
	TranslateSeconds float64 `json:"translate_seconds"`
	CompileSeconds   float64 `json:"compile_seconds"`
	ExecSeconds      float64 `json:"exec_seconds"`
	BlocksPerSec     float64 `json:"blocks_per_sec"`
	InstrsPerSec     float64 `json:"instrs_per_sec"`
	ExecInstrsPerSec float64 `json:"exec_instrs_per_sec"`

	HotBlocks       uint64  `json:"hot_blocks"`
	HotInstrs       uint64  `json:"hot_instrs"`
	HotWallSeconds  float64 `json:"hot_wall_seconds"`
	HotBlocksPerSec float64 `json:"hot_blocks_per_sec"`
	HotInstrsPerSec float64 `json:"hot_instrs_per_sec"`

	SpeedupVsIR     float64 `json:"speedup_vs_ir"`
	ExecSpeedupVsIR float64 `json:"exec_speedup_vs_ir"`
	E2ESpeedupVsIR  float64 `json:"e2e_speedup_vs_ir"`

	ChainHitRate  float64 `json:"chain_hit_rate"`
	ExtendSeams   uint64  `json:"extend_seams"`
	Translations  uint64  `json:"translations"`
	SharedHits    uint64  `json:"shared_hits,omitempty"`
	Pretranslated uint64  `json:"pretranslated_blocks,omitempty"`
	CacheFootKiB  float64 `json:"cache_footprint_kib"`
	SuiteRepeats  int     `json:"suite_repeats"`
	SuitePrograms int     `json:"suite_programs"`
}

// replayWindow executes natural control flow starting at the cached block
// `start`, hot: it follows the guest's real branches and jumps for up to
// maxSteps blocks, stopping as soon as the next PC leaves the replayable
// region (boring[pc/ib] false — an untranslated address, or a block whose
// exit needs VM runtime). Following real flow is what lets block chaining
// do its job: the dispatcher's successor predictions hit exactly as they
// would in a long-running guest. The guest state is whatever the warm run
// (and earlier windows) left behind; both engines evolve it identically, so
// the work compared across arms is the same. A block that faults in the
// dead state unwinds here and is removed from the region — at the same
// point in every arm. One recover scope covers the whole window, and the
// per-block region check is a slice index, so harness cost per measured
// block is negligible.
func replayWindow(m *vm.Machine, t *vm.Thread, start uint64, boring []bool, maxSteps int) (n int) {
	defer func() {
		if recover() != nil {
			if idx := t.PC / guest.InstrBytes; idx < uint64(len(boring)) {
				boring[idx] = false
			}
		}
	}()
	t.PC = start
	for n < maxSteps {
		idx := t.PC / guest.InstrBytes
		if idx >= uint64(len(boring)) || !boring[idx] {
			break
		}
		m.Eng.RunBlock(m, t)
		n++
	}
	return n
}

// hotReplay re-executes the warmed instance's translated code reps times,
// returning blocks run, instructions retired, and wall time. The replayable
// region is the cached blocks ending in a plain jump (JKBoring —
// straight-line compute and branches): blocks ending in host calls,
// calls/returns, or thread exits spend their time in shared VM runtime that
// is identical across engines and would only dilute the engine comparison
// (and replaying them against the dead post-exit state mutates
// scheduler/stack state unpredictably). Each sweep launches one window per
// region block, following natural control flow until it leaves the region.
// Two untimed qualification sweeps first prune blocks that fault against the
// post-exit guest state; faults during timed sweeps prune the same way.
// Engines are behaviorally identical, so every arm qualifies, prunes, and
// replays the same work.
func hotReplay(inst *harness.Instance, reps int) (blocks, instrs uint64, wall time.Duration) {
	const maxWindow = 512
	t0 := inst.M.Thread(0)
	var addrs []uint64
	var maxAddr uint64
	for _, a := range inst.Core.CachedBlocks() {
		if sb := inst.Core.BlockIR(a); sb == nil || sb.NextJK != vex.JKBoring {
			continue
		}
		addrs = append(addrs, a)
		if a > maxAddr {
			maxAddr = a
		}
	}
	if len(addrs) == 0 {
		return 0, 0, 0
	}
	boring := make([]bool, maxAddr/guest.InstrBytes+1)
	for _, a := range addrs {
		boring[a/guest.InstrBytes] = true
	}
	sweep := func() (n uint64) {
		for _, a := range addrs {
			if boring[a/guest.InstrBytes] {
				n += uint64(replayWindow(inst.M, t0, a, boring, maxWindow))
			}
		}
		return n
	}
	sweep()
	sweep()
	i0 := inst.M.InstrsExecuted
	start := time.Now()
	for k := 0; k < reps; k++ {
		blocks += sweep()
	}
	wall = time.Since(start)
	return blocks, inst.M.InstrsExecuted - i0, wall
}

// BenchmarkPerfEngines measures IR-interpreter vs compiled-engine throughput
// on the Table I suite. Results accumulate across all benchmark iterations,
// so longer -benchtime runs produce tighter numbers; the wall clock covers
// guest execution only (images are pre-linked; Result.Wall excludes build
// and Fini).
func BenchmarkPerfEngines(b *testing.B) {
	benches := drb.All()
	images := make([]*guest.Image, len(benches))
	for i, bench := range benches {
		im, err := bench.Build().Link()
		if err != nil {
			b.Fatal(err)
		}
		images[i] = im
	}
	const repeats = 3
	const hotReps = 400

	arms := []*perfArm{
		{Name: "ir", Engine: dbi.EngineIR},
		{Name: "compiled", Engine: dbi.EngineCompiled},
		{Name: "compiled-ext", Engine: dbi.EngineCompiled, Extend: 128},
		{Name: "compiled-warm", Engine: dbi.EngineCompiled, Warm: true},
		{Name: "compiled-pretranslate", Engine: dbi.EngineCompiled, Pretranslate: true},
	}
	done := 0
	for _, arm := range arms {
		arm := arm
		b.Run(arm.Name, func(b *testing.B) {
			var warmCache *tstore.Cache
			if arm.Warm {
				// One untimed priming pass fills the shared store; every
				// measured run below then resolves its translations warm.
				warmCache = tstore.NewCache("")
				for _, im := range images {
					inst, err := harness.New(harness.Setup{
						Image: im, Tool: dbi.NopTool{}, Seed: 1, Threads: 4,
						Stdout: io.Discard, Engine: arm.Engine, Extend: arm.Extend,
						TStore: warmCache,
					})
					if err != nil {
						b.Fatal(err)
					}
					if res := inst.Run(); res.Err != nil {
						b.Fatal(res.Err)
					}
				}
			}
			var chainHits, chainMisses, cacheFoot uint64
			for i := 0; i < b.N; i++ {
				for r := 0; r < repeats; r++ {
					for _, im := range images {
						// Settle the heap before every guest run: these
						// runs are short enough that a settled heap never
						// re-triggers GC mid-run, so no arm's measurement
						// is taxed by assists provoked by another run's
						// translation garbage (all arms share the process
						// heap). The GC itself runs outside the measured
						// wall clock.
						runtime.GC()
						s := harness.Setup{
							Image: im, Tool: dbi.NopTool{}, Seed: 1, Threads: 4,
							Stdout: io.Discard, Engine: arm.Engine, Extend: arm.Extend,
						}
						if arm.Warm {
							s.TStore = warmCache
						} else if arm.Pretranslate {
							// Fresh store per run: the pipeline races the
							// guest on spare cores, cold every time.
							s.TStore = tstore.NewCache("")
							s.Pretranslate = true
							s.NewTool = func() dbi.Tool { return dbi.NopTool{} }
						}
						inst, err := harness.New(s)
						if err != nil {
							b.Fatal(err)
						}
						res := inst.Run()
						if res.Err != nil {
							b.Fatal(res.Err)
						}
						if inst.Pretrans != nil {
							inst.Pretrans.Wait() // settle outside the run wall
						}
						arm.SharedHits += inst.Core.SharedHits
						arm.Pretranslated += inst.Core.PretranslatedBlocks
						arm.Blocks += inst.M.BlocksExecuted
						arm.Instrs += inst.M.InstrsExecuted
						arm.WallSeconds += res.Wall.Seconds()
						arm.TranslateSeconds += float64(inst.Core.TranslateNanos) / 1e9
						arm.CompileSeconds += float64(inst.Core.CompileNanos) / 1e9
						chainHits += inst.Core.ChainHits
						chainMisses += inst.Core.ChainMisses
						arm.ExtendSeams += inst.Core.ExtendSeams
						arm.Translations += inst.Core.Translations
						cacheFoot += inst.Core.CacheFootprint()

						hb, hi, hw := hotReplay(inst, hotReps)
						arm.HotBlocks += hb
						arm.HotInstrs += hi
						arm.HotWallSeconds += hw.Seconds()
					}
				}
			}
			if total := chainHits + chainMisses; total > 0 {
				arm.ChainHitRate = float64(chainHits) / float64(total)
			}
			arm.CacheFootKiB = float64(cacheFoot) / 1024
			arm.SuiteRepeats = repeats
			arm.SuitePrograms = len(images)
			arm.ExecSeconds = arm.WallSeconds - arm.TranslateSeconds - arm.CompileSeconds
			arm.BlocksPerSec = float64(arm.Blocks) / arm.WallSeconds
			arm.InstrsPerSec = float64(arm.Instrs) / arm.WallSeconds
			arm.ExecInstrsPerSec = float64(arm.Instrs) / arm.ExecSeconds
			arm.HotBlocksPerSec = float64(arm.HotBlocks) / arm.HotWallSeconds
			arm.HotInstrsPerSec = float64(arm.HotInstrs) / arm.HotWallSeconds
			b.ReportMetric(arm.InstrsPerSec, "instrs/sec")
			b.ReportMetric(arm.ExecInstrsPerSec, "exec-instrs/sec")
			b.ReportMetric(arm.HotInstrsPerSec, "hot-instrs/sec")
			done++
		})
	}
	if done < len(arms) {
		return // partial -bench filter: nothing comparable to record
	}
	ir := arms[0]
	for _, arm := range arms {
		arm.SpeedupVsIR = arm.HotInstrsPerSec / ir.HotInstrsPerSec
		arm.ExecSpeedupVsIR = arm.ExecInstrsPerSec / ir.ExecInstrsPerSec
		arm.E2ESpeedupVsIR = arm.InstrsPerSec / ir.InstrsPerSec
	}
	writePerfSection(b, "engines", struct {
		Suite     string     `json:"suite"`
		Tool      string     `json:"tool"`
		Threads   int        `json:"threads"`
		Seed      uint64     `json:"seed"`
		Criterion string     `json:"criterion"`
		Timestamp string     `json:"timestamp"`
		Arms      []*perfArm `json:"arms"`
	}{
		Suite: "table1-drb", Tool: "none(nop)", Threads: 4, Seed: 1,
		Criterion: "speedup_vs_ir compares hot_instrs_per_sec: engine " +
			"throughput re-executing the suite's cached translations. " +
			"exec_speedup_vs_ir excludes translate+compile wall time " +
			"but keeps shared runtime cost; e2e_speedup_vs_ir is raw " +
			"wall clock (translation-dominated on this suite). The " +
			"compiled-warm arm resolves translations from a primed " +
			"shared store — the daemon/sweep steady state — and must " +
			"beat ir end to end (gated by TestWarmStoreE2ERegression). " +
			"compiled-pretranslate starts cold with the pipeline " +
			"racing the guest; on these ~1ms programs the guest " +
			"usually wins, so its value shows on long-running guests, " +
			"not here.",
		Timestamp: time.Now().UTC().Format(time.RFC3339),
		Arms:      arms,
	})
}

// TestWarmStoreE2ERegression is the translation-store gate for `make
// check`: gated behind PERF_GUARD=1, it requires the recorded compiled-warm
// arm to beat the IR interpreter end to end (e2e_speedup_vs_ir > 1 — the
// store's reason to exist: once translation is amortized, even raw wall
// clock on this translation-dominated suite must win), then re-measures
// fresh (best of three) to prove the property still holds on this machine.
func TestWarmStoreE2ERegression(t *testing.T) {
	if os.Getenv("PERF_GUARD") != "1" {
		t.Skip("set PERF_GUARD=1 to run the warm-store e2e gate")
	}
	path := os.Getenv("PERF_BENCH_OUT")
	if path == "" {
		path = "BENCH_perf.json"
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("no baseline (run `make bench-perf` first): %v", err)
	}
	var doc struct {
		Engines struct {
			Arms []struct {
				Name           string  `json:"name"`
				E2ESpeedupVsIR float64 `json:"e2e_speedup_vs_ir"`
			} `json:"arms"`
		} `json:"engines"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("parse %s: %v", path, err)
	}
	recorded := 0.0
	for _, arm := range doc.Engines.Arms {
		if arm.Name == "compiled-warm" {
			recorded = arm.E2ESpeedupVsIR
		}
	}
	if recorded == 0 {
		t.Fatalf("no compiled-warm arm in %s (run `make bench-perf`)", path)
	}
	if recorded <= 1 {
		t.Errorf("recorded compiled-warm e2e_speedup_vs_ir = %.3f, want > 1", recorded)
	}

	benches := drb.All()
	images := make([]*guest.Image, len(benches))
	for i, bench := range benches {
		im, err := bench.Build().Link()
		if err != nil {
			t.Fatal(err)
		}
		images[i] = im
	}
	measure := func(engine string, cache *tstore.Cache) float64 {
		var instrs uint64
		var wall time.Duration
		for _, im := range images {
			runtime.GC()
			inst, err := harness.New(harness.Setup{
				Image: im, Tool: dbi.NopTool{}, Seed: 1, Threads: 4,
				Stdout: io.Discard, Engine: engine, TStore: cache,
			})
			if err != nil {
				t.Fatal(err)
			}
			res := inst.Run()
			if res.Err != nil {
				t.Fatal(res.Err)
			}
			instrs += inst.M.InstrsExecuted
			wall += res.Wall
		}
		return float64(instrs) / wall.Seconds()
	}
	cache := tstore.NewCache("")
	measure(dbi.EngineCompiled, cache) // untimed priming pass
	best := 0.0
	for i := 0; i < 3; i++ {
		ir := measure(dbi.EngineIR, nil)
		warm := measure(dbi.EngineCompiled, cache)
		if s := warm / ir; s > best {
			best = s
		}
	}
	t.Logf("warm store e2e speedup vs ir: %.2fx fresh (recorded %.2fx)", best, recorded)
	if best <= 1 {
		t.Errorf("warm compiled runs no longer beat the IR interpreter end to end: %.3fx", best)
	}
}

// tstoreArm is one translation-store configuration under measurement in
// BenchmarkTStoreContention. Wall time is measured from cache construction
// through run completion, so the disk arms pay their scan-and-merge startup
// inside the figure — that startup cost is exactly what the cross-process
// tier must keep negligible.
type tstoreArm struct {
	Name          string  `json:"name"`
	Runs          int     `json:"runs"`
	WallSeconds   float64 `json:"wall_seconds"`
	Translations  uint64  `json:"translations"`
	SharedHits    uint64  `json:"shared_hits"`
	Merged        uint64  `json:"merged_frames"`
	LockWaits     uint64  `json:"lock_waits"`
	SpeedupVsCold float64 `json:"speedup_vs_cold"`
}

// tstoreSuitePass models one process per image running a `seeds`-seed
// sweep — the store's design workload (an explore sweep, a daemon's job
// stream): the cache built by mk (nil = no store) is constructed once per
// image, pays its persistent-tier scan there, and amortizes it across the
// sweep. Returns elapsed wall (including cache construction and scan) plus
// counters.
func tstoreSuitePass(tb testing.TB, images []*guest.Image, seeds int, mk func() *tstore.Cache) (wall time.Duration, tr, hits uint64, last *tstore.Cache) {
	tb.Helper()
	for _, im := range images {
		runtime.GC()
		start := time.Now()
		var cache *tstore.Cache
		if mk != nil {
			cache = mk()
		}
		for seed := 1; seed <= seeds; seed++ {
			inst, err := harness.New(harness.Setup{
				Image: im, Tool: dbi.NopTool{}, Seed: uint64(seed), Threads: 4,
				Stdout: io.Discard, Engine: dbi.EngineCompiled, TStore: cache,
			})
			if err != nil {
				tb.Fatal(err)
			}
			res := inst.Run()
			if res.Err != nil {
				tb.Fatal(res.Err)
			}
			tr += inst.Core.Translations
			hits += inst.Core.SharedHits
		}
		wall += time.Since(start)
		last = cache
	}
	return wall, tr, hits, last
}

// BenchmarkTStoreContention compares the store's steady states: cold (no
// store), warm in one process's memory, warm across processes (every run
// opens a fresh Cache over a primed directory — the scan-merge startup a
// second taskgrind or a daemon restart pays), and that same cross-process
// warm start under flock contention from three concurrent peers. Writes
// the "tstore" section of $PERF_BENCH_OUT.
func BenchmarkTStoreContention(b *testing.B) {
	benches := drb.All()
	images := make([]*guest.Image, len(benches))
	for i, bench := range benches {
		im, err := bench.Build().Link()
		if err != nil {
			b.Fatal(err)
		}
		images[i] = im
	}

	// Prime both warm substrates once, untimed.
	const sweepSeeds = 16
	memCache := tstore.NewCache("")
	tstoreSuitePass(b, images, 1, func() *tstore.Cache { return memCache })
	dir := b.TempDir()
	seed := tstore.NewCache(dir)
	tstoreSuitePass(b, images, 1, func() *tstore.Cache { return seed })
	if err := seed.Save(); err != nil {
		b.Fatal(err)
	}

	arms := []*tstoreArm{
		{Name: "cold"},
		{Name: "warm-mem"},
		{Name: "warm-disk"},
		{Name: "warm-disk-contended"},
	}
	done := 0
	for _, arm := range arms {
		arm := arm
		b.Run(arm.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				var mk func() *tstore.Cache
				switch arm.Name {
				case "warm-mem":
					mk = func() *tstore.Cache { return memCache }
				case "warm-disk", "warm-disk-contended":
					mk = func() *tstore.Cache { return tstore.NewCache(dir) }
				}
				if arm.Name == "warm-disk-contended" {
					// Three peers churn the same directory (run + save)
					// while the measured pass opens and merges it.
					stop := make(chan struct{})
					var wg sync.WaitGroup
					for p := 0; p < 3; p++ {
						wg.Add(1)
						go func() {
							defer wg.Done()
							for {
								select {
								case <-stop:
									return
								default:
								}
								_, _, _, c := tstoreSuitePass(b, images[:4], 1, mk)
								_ = c.Save()
							}
						}()
					}
					wall, tr, hits, c := tstoreSuitePass(b, images, sweepSeeds, mk)
					close(stop)
					wg.Wait()
					arm.WallSeconds += wall.Seconds()
					arm.Translations += tr
					arm.SharedHits += hits
					cs := c.Stats()
					arm.Merged += cs.Merged
					arm.LockWaits += cs.LockWaits
				} else {
					wall, tr, hits, c := tstoreSuitePass(b, images, sweepSeeds, mk)
					arm.WallSeconds += wall.Seconds()
					arm.Translations += tr
					arm.SharedHits += hits
					if c != nil {
						cs := c.Stats()
						arm.Merged += cs.Merged
						arm.LockWaits += cs.LockWaits
					}
				}
				arm.Runs += len(images) * sweepSeeds
			}
			b.ReportMetric(arm.WallSeconds/float64(b.N), "suite-sec")
			done++
		})
	}
	if done < len(arms) {
		return
	}
	cold := arms[0]
	for _, arm := range arms {
		arm.SpeedupVsCold = cold.WallSeconds / float64(cold.Runs) /
			(arm.WallSeconds / float64(arm.Runs))
	}
	writePerfSection(b, "tstore", struct {
		Suite     string       `json:"suite"`
		Criterion string       `json:"criterion"`
		Timestamp string       `json:"timestamp"`
		Arms      []*tstoreArm `json:"arms"`
	}{
		Suite: "table1-drb",
		Criterion: "each arm runs a 16-seed sweep per image; " +
			"wall_seconds includes cache construction and the " +
			"persistent tier's scan-merge startup. warm-disk opens a " +
			"fresh Cache over a primed directory per image sweep — the " +
			"second process / daemon-restart path — and must stay " +
			"within 1.2x of warm-mem (gated by " +
			"TestWarmCrossProcessRegression); warm-disk-contended adds " +
			"three concurrent save/merge peers on the same directory " +
			"to price the flock protocol.",
		Timestamp: time.Now().UTC().Format(time.RFC3339),
		Arms:      arms,
	})
}

// TestWarmCrossProcessRegression (PERF_GUARD=1) is the cross-process
// startup gate, measured at the store's design granularity — one process
// per image running a 16-seed sweep (the explore-sweep / daemon-job-stream
// shape): a fresh process that warm-starts from the persistent tier (fresh
// Cache over a primed directory — flock, read, CRC-verify, decode and
// merge all inside the measured wall) must complete the sweep in at most
// 1.2x the time of a process already warm in local memory, best of three.
// If the locked append protocol or the scan path regresses into a startup
// tax that a sweep can no longer amortize, this fails `make check` before
// any user feels it.
func TestWarmCrossProcessRegression(t *testing.T) {
	if os.Getenv("PERF_GUARD") != "1" {
		t.Skip("set PERF_GUARD=1 to run the cross-process warm gate")
	}
	const sweepSeeds = 16
	benches := drb.All()
	images := make([]*guest.Image, len(benches))
	for i, bench := range benches {
		im, err := bench.Build().Link()
		if err != nil {
			t.Fatal(err)
		}
		images[i] = im
	}
	memCache := tstore.NewCache("")
	tstoreSuitePass(t, images, 1, func() *tstore.Cache { return memCache })
	dir := t.TempDir()
	seed := tstore.NewCache(dir)
	tstoreSuitePass(t, images, 1, func() *tstore.Cache { return seed })
	if err := seed.Save(); err != nil {
		t.Fatal(err)
	}
	best := 0.0
	for i := 0; i < 3; i++ {
		mem, _, _, _ := tstoreSuitePass(t, images, sweepSeeds, func() *tstore.Cache { return memCache })
		disk, _, diskHits, _ := tstoreSuitePass(t, images, sweepSeeds, func() *tstore.Cache { return tstore.NewCache(dir) })
		if diskHits == 0 {
			t.Fatal("disk-warm pass adopted nothing — tier not loading")
		}
		if r := disk.Seconds() / mem.Seconds(); best == 0 || r < best {
			best = r
		}
	}
	t.Logf("cross-process warm sweep: %.2fx single-process warm (gate 1.2x)", best)
	if best > 1.2 {
		t.Errorf("cross-process warm sweep costs %.2fx single-process warm, want <= 1.2x", best)
	}
}

// perfSections are the top-level keys of $PERF_BENCH_OUT. The file is shared
// by BenchmarkPerfEngines ("engines"), BenchmarkToolDelivery
// ("tool_delivery"), BenchmarkRobustness ("robustness"), BenchmarkRecording
// ("recording"), BenchmarkServe ("serve"), BenchmarkLockContention
// ("locks") and BenchmarkTStoreContention ("tstore"); each benchmark
// rewrites only its own section so they can be (re)recorded independently.
var perfSections = []string{"engines", "tool_delivery", "robustness", "recording", "serve", "locks", "tstore"}

// writePerfSection read-modify-writes one section of $PERF_BENCH_OUT,
// preserving the other sections. A legacy flat-format file (pre-sections) is
// discarded rather than merged. No-op when PERF_BENCH_OUT is unset.
func writePerfSection(b *testing.B, key string, section any) {
	b.Helper()
	out := os.Getenv("PERF_BENCH_OUT")
	if out == "" {
		return
	}
	doc := map[string]json.RawMessage{}
	if data, err := os.ReadFile(out); err == nil {
		var prev map[string]json.RawMessage
		if json.Unmarshal(data, &prev) == nil {
			for _, k := range perfSections {
				if v, ok := prev[k]; ok {
					doc[k] = v
				}
			}
		}
	}
	raw, err := json.MarshalIndent(section, "  ", "  ")
	if err != nil {
		b.Fatal(err)
	}
	doc[key] = raw
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		b.Fatal(err)
	}
}
