package repro

// Guest-level lock benchmarks and scheduler-perturbation gates. The lock
// subsystem's perf contract has two sides:
//
//   - Lock-free programs pay nothing: the scheduler draws wakeup
//     randomness only when a mutex actually has more than one waiter, so
//     the PRNG stream — and with it every seed-addressed schedule — is
//     bit-identical to the pre-lock substrate on programs that never lock.
//     TestLockSchedulerUnperturbed pins that, plus the solo fast path.
//   - Contended handoffs are deterministic: the same seed produces the
//     same acquire/handoff/preemption counts run after run and engine to
//     engine, so every lock verdict replays.
//
// BenchmarkLockContention measures the cost side — contended vs
// uncontended acquire throughput on a hot mutex loop — and records it as
// the "locks" section of $PERF_BENCH_OUT (`make bench-perf`).

import (
	"fmt"
	"io"
	"testing"
	"time"

	"repro/internal/gbuild"
	"repro/internal/guest"
	"repro/internal/harness"
	"repro/internal/lulesh"
	"repro/internal/omp"
	"repro/internal/progs"
)

// lockLoopProgram builds `tasks` sibling tasks, each looping `iters` times
// over a mutex-protected counter increment. With contended=true every task
// hammers ONE mutex and one counter; otherwise each task gets its own
// mutex and counter (acquire-path cost without any handoffs).
func lockLoopProgram(tasks, iters int, contended bool) *gbuild.Builder {
	const file = "lockloop.c"
	const r1, r2, r3 = guest.R1, guest.R2, guest.R3
	b := omp.NewProgram()
	mutexOf := func(i int) string { return fmt.Sprintf("m%d", i) }
	counterOf := func(i int) string { return fmt.Sprintf("counter%d", i) }
	if contended {
		mutexOf = func(int) string { return "m" }
		counterOf = func(int) string { return "counter" }
		b.Global("m", 8)
		b.Global("counter", 8)
	} else {
		for i := 0; i < tasks; i++ {
			b.Global(mutexOf(i), 8)
			b.Global(counterOf(i), 8)
		}
	}

	for i := 0; i < tasks; i++ {
		f := b.Func(fmt.Sprintf("worker%d", i), file)
		f.Line(10 + i)
		f.Enter(16)
		f.Ldi(r3, 0)
		f.StLocal(8, 8, r3)
		loop := f.NewLabel()
		f.Bind(loop)
		omp.WithMutex(f, mutexOf(i), func() {
			f.LoadSym(r1, counterOf(i))
			f.Ld(8, r2, r1, 0)
			f.Addi(r2, r2, 1)
			f.St(8, r1, 0, r2)
		})
		f.LdLocal(8, r3, 8)
		f.Addi(r3, r3, 1)
		f.StLocal(8, 8, r3)
		f.Ldi(r2, int32(iters))
		f.Blt(r3, r2, loop)
		f.Leave()
	}

	f := b.Func("micro", file)
	f.Enter(0)
	fn := f
	omp.SingleNowait(f, func() {
		for i := 0; i < tasks; i++ {
			fn.Line(30 + i)
			omp.EmitTask(fn, omp.TaskOpts{Fn: fmt.Sprintf("worker%d", i)})
		}
	})
	f.Leave()

	f = b.Func("main", file)
	f.Enter(0)
	f.Line(5)
	if contended {
		omp.MutexInit(f, "m")
	} else {
		for i := 0; i < tasks; i++ {
			omp.MutexInit(f, mutexOf(i))
		}
	}
	f.Ldi(r1, 0)
	omp.Parallel(f, "micro", r1, 0)
	f.Ldi(guest.R0, 0)
	f.Hlt(guest.R0)
	return b
}

// schedCounts is the scheduler fingerprint of one run.
type schedCounts struct {
	slices, preemptions, switches uint64
	acquires, handoffs            uint64
}

// runSched executes prog and returns its scheduler fingerprint.
func runSched(t *testing.T, prog string, seed uint64, threads int, engine string) schedCounts {
	t.Helper()
	b, err := progs.Build(prog, lulesh.Params{})
	if err != nil {
		t.Fatal(err)
	}
	res, inst, err := harness.BuildAndRun(b, harness.Setup{
		Seed: seed, Threads: threads, Stdout: io.Discard, Engine: engine,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Err != nil {
		t.Fatalf("%s: %v", prog, res.Err)
	}
	return schedCounts{
		slices: inst.M.Slices, preemptions: inst.M.Preemptions, switches: inst.M.Switches,
		acquires: inst.OMP.MutexAcquires, handoffs: inst.OMP.MutexHandoffs,
	}
}

// TestLockSchedulerUnperturbed pins the lock subsystem's scheduler
// contract: the solo fast path stays preemption-free, lock-free programs
// never touch the mutex runtime (so their seed-addressed schedules are
// untouched by lock-subsystem changes), and contended handoff schedules
// are deterministic across repeated runs and across engines.
func TestLockSchedulerUnperturbed(t *testing.T) {
	// Solo fast path: one runnable thread never preempts.
	if c := runSched(t, "task.c", 1, 1, ""); c.preemptions != 0 {
		t.Errorf("solo run preempted %d times, want 0", c.preemptions)
	}

	// Lock-free program: zero mutex traffic, and a bit-stable schedule —
	// identical counts run to run and engine to engine.
	ref := runSched(t, "task.c", 1, 4, "")
	if ref.acquires != 0 {
		t.Errorf("lock-free program performed %d mutex acquires", ref.acquires)
	}
	for _, eng := range []string{"", "ir", "compiled"} {
		if c := runSched(t, "task.c", 1, 4, eng); c != ref {
			t.Errorf("lock-free schedule perturbed (engine %q): %+v vs %+v", eng, c, ref)
		}
	}

	// Contended program: locks actually exercised, and the handoff
	// schedule is just as deterministic.
	lref := runSched(t, "lock-100-mutex-counter", 1, 4, "")
	if lref.acquires == 0 {
		t.Fatal("lock-100-mutex-counter performed no mutex acquires")
	}
	for _, eng := range []string{"", "ir", "compiled"} {
		if c := runSched(t, "lock-100-mutex-counter", 1, 4, eng); c != lref {
			t.Errorf("contended schedule nondeterministic (engine %q): %+v vs %+v", eng, c, lref)
		}
	}
}

// lockArm is one measured configuration of BenchmarkLockContention.
type lockArm struct {
	Name  string `json:"name"`
	Tasks int    `json:"tasks"`
	Iters int    `json:"iters"`

	Acquires       uint64  `json:"acquires"`
	Contended      uint64  `json:"contended"`
	Handoffs       uint64  `json:"handoffs"`
	Preemptions    uint64  `json:"preemptions"`
	WallSeconds    float64 `json:"wall_seconds"`
	AcquiresPerSec float64 `json:"acquires_per_sec"`
	NsPerAcquire   float64 `json:"ns_per_acquire"`
}

// BenchmarkLockContention measures guest mutex acquire throughput on a hot
// locked-increment loop, contended (4 tasks, one mutex) against
// uncontended (4 tasks, private mutexes). The delta is the price of
// blocking, wakeup-order draws and handoff scheduling. `make bench-perf`
// records the comparison as the "locks" section of BENCH_perf.json.
func BenchmarkLockContention(b *testing.B) {
	const tasks, iters = 4, 64
	arms := []*lockArm{
		{Name: "contended", Tasks: tasks, Iters: iters},
		{Name: "uncontended", Tasks: tasks, Iters: iters},
	}
	done := 0
	for _, arm := range arms {
		arm := arm
		b.Run(arm.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				inst, err := harness.New(harness.Setup{
					Image: mustLink(b, lockLoopProgram(tasks, iters, arm.Name == "contended")),
					Seed:  1, Threads: tasks, Stdout: io.Discard,
				})
				if err != nil {
					b.Fatal(err)
				}
				res := inst.Run()
				if res.Err != nil {
					b.Fatal(res.Err)
				}
				arm.Acquires += inst.OMP.MutexAcquires
				arm.Contended += inst.OMP.MutexContended
				arm.Handoffs += inst.OMP.MutexHandoffs
				arm.Preemptions += inst.M.Preemptions
				arm.WallSeconds += res.Wall.Seconds()
			}
			arm.AcquiresPerSec = float64(arm.Acquires) / arm.WallSeconds
			arm.NsPerAcquire = arm.WallSeconds * 1e9 / float64(arm.Acquires)
			b.ReportMetric(arm.AcquiresPerSec, "acquires/sec")
			b.ReportMetric(arm.NsPerAcquire, "ns/acquire")
			done++
		})
	}
	if done < len(arms) {
		return // partial -bench filter: nothing comparable to record
	}
	writePerfSection(b, "locks", struct {
		Workload  string     `json:"workload"`
		Threads   int        `json:"threads"`
		Seed      uint64     `json:"seed"`
		Criterion string     `json:"criterion"`
		Timestamp string     `json:"timestamp"`
		Arms      []*lockArm `json:"arms"`
	}{
		Workload: fmt.Sprintf("%d tasks x %d locked increments", tasks, iters),
		Threads:  tasks, Seed: 1,
		Criterion: "ns_per_acquire contended vs uncontended bounds the cost of " +
			"blocking, seed-deterministic wakeup draws and handoff " +
			"scheduling; lock-free scheduler neutrality is gated " +
			"separately by TestLockSchedulerUnperturbed.",
		Timestamp: time.Now().UTC().Format(time.RFC3339),
		Arms:      arms,
	})
}

// mustLink links a builder or fails the benchmark.
func mustLink(b *testing.B, bb *gbuild.Builder) *guest.Image {
	b.Helper()
	im, err := bb.Link()
	if err != nil {
		b.Fatal(err)
	}
	return im
}
