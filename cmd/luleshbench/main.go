// Command luleshbench regenerates the paper's Table II and Fig 4 on the
// LULESH proxy, plus the §IV naive-suppression motivation experiment.
//
// Usage:
//
//	luleshbench -table2               # Table II at -s 16 -tel 4 -tnl 4 -i 4
//	luleshbench -fig4                 # overhead sweep over -s
//	luleshbench -naive                # §IV motivation (suppressions off)
//	luleshbench -table2 -s 8 -i 2     # smaller configuration
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/explore"
	"repro/internal/gbuild"
	"repro/internal/lulesh"
)

func main() {
	var (
		table2 = flag.Bool("table2", false, "reproduce Table II")
		fig4   = flag.Bool("fig4", false, "reproduce Fig 4 (problem-size sweep)")
		naive  = flag.Bool("naive", false, "reproduce the §IV suppression motivation")
		explo  = flag.Bool("explore", false, "schedule sensitivity: racy LULESH report counts across seeds (the '149 to 273' row)")
		nseeds = flag.Int("seeds", 12, "explore: number of schedules")
		sizes  = flag.String("sizes", "4,8,12,16", "fig4: comma-separated mesh sizes")
		s      = flag.Int("s", 16, "mesh size")
		tel    = flag.Int("tel", 4, "tasks per element loop")
		tnl    = flag.Int("tnl", 4, "tasks per node loop")
		iters  = flag.Int("i", 4, "iterations")
		seed   = flag.Uint64("seed", 1, "scheduler seed")
	)
	flag.Parse()
	p := lulesh.Params{S: *s, TEL: *tel, TNL: *tnl, Iters: *iters}

	switch {
	case *table2:
		fmt.Printf("Table II — LULESH -s %d -tel %d -tnl %d -i %d\n", p.S, p.TEL, p.TNL, p.Iters)
		rows, err := lulesh.GenerateTableII(p, *seed)
		check(err)
		fmt.Print(lulesh.FormatTableII(rows))
		fmt.Println("\n(the paper's prototype deadlocked on 4-thread Taskgrind runs; this implementation does not)")

	case *fig4:
		var ss []int
		for _, part := range strings.Split(*sizes, ",") {
			v, err := strconv.Atoi(strings.TrimSpace(part))
			check(err)
			ss = append(ss, v)
		}
		fmt.Printf("Fig 4 — overheads vs problem size (tel=%d tnl=%d i=%d)\n", p.TEL, p.TNL, p.Iters)
		pts, err := lulesh.GenerateFig4(ss, p, *seed)
		check(err)
		fmt.Print(lulesh.FormatFig4(pts))

	case *naive:
		np := lulesh.Params{S: 4, TEL: 2, TNL: 2, Iters: *iters}
		fmt.Printf("§IV motivation — correct LULESH -s %d -tel %d, suppressions on vs off\n", np.S, np.TEL)
		def, err := lulesh.Run(np, "taskgrind", 4, *seed)
		check(err)
		nv, err := lulesh.Run(np, "taskgrind-naive", 4, *seed)
		check(err)
		fmt.Printf("  with suppressions:    %6d reports (%v)\n", def.Reports, def.Wall.Round(time.Microsecond))
		fmt.Printf("  without suppressions: %6d reports (%v)\n", nv.Reports, nv.Wall.Round(time.Microsecond))

	case *explo:
		pp := p
		pp.Racy = true
		build := func() *gbuild.Builder {
			b, err := lulesh.Build(pp)
			check(err)
			return b
		}
		fmt.Printf("Schedule sensitivity — racy LULESH -s %d, %d schedules, 4 threads\n", pp.S, *nseeds)
		for _, tool := range []string{"archer", "taskgrind"} {
			out, err := explore.Run(build, tool, 4, *nseeds, 4)
			check(err)
			fmt.Println(" ", out.String())
		}

	default:
		flag.Usage()
		os.Exit(2)
	}
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "luleshbench:", err)
		os.Exit(2)
	}
}
