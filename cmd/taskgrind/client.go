package main

// The daemon client verbs: `taskgrind submit|status|cancel` talk to a
// running taskgrindd over HTTP/JSON. `submit -wait` polls the job to its
// terminal state and exits with the same taxonomy exit code a local
// `taskgrind` run of that configuration would have used — scripts cannot
// tell the two front ends apart.

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"time"

	"repro/internal/harness"
	"repro/internal/obs/store"
	"repro/internal/serve"
)

// getJSON decodes a GET response into out.
func getJSON(url string, out any) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		return fmt.Errorf("%s: %s", resp.Status, bytes.TrimSpace(body))
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// exitFor maps one terminal job view to the CLI exit-code table.
func exitFor(v serve.JobView) int {
	switch {
	case v.Status == serve.StatusCanceled:
		return harness.ExitCodeFor(harness.TaxCanceled)
	case v.Result == nil:
		return 2
	case v.Result.Verdict == store.VerdictOK:
		if v.Result.Reports > 0 {
			return 1
		}
		return 0
	}
	return harness.ExitCodeFor(v.Result.Verdict)
}

// runSubmit implements `taskgrind submit`: build a job spec from flags (or
// a replay token), POST it, optionally wait for the terminal state.
func runSubmit(args []string, w io.Writer) int {
	fs := flag.NewFlagSet("submit", flag.ExitOnError)
	var (
		addr       = fs.String("addr", "http://localhost:8080", "daemon base URL")
		token      = fs.String("token", "", "submit a replay token (tg1:...) instead of spec flags")
		prog       = fs.String("prog", "task.c", "program to run")
		tool       = fs.String("tool", "taskgrind", "analysis tool")
		seed       = fs.Uint64("seed", 1, "scheduler seed")
		seeds      = fs.Int("seeds", 1, "seed-range sweep: submit seeds seed..seed+N-1 as one group")
		threads    = fs.Int("threads", 4, "OMP_NUM_THREADS")
		engine     = fs.String("engine", "", "execution engine (compiled, ir)")
		delivery   = fs.String("delivery", "batched", "tool access delivery")
		extend     = fs.Int("extend", 0, "superblock extension budget")
		inject     = fs.String("inject", "", "fault injection spec")
		injectSeed = fs.Uint64("inject-seed", 1, "fault injection seed")
		lenient    = fs.Bool("lenient-mem", false, "lenient guest memory model")
		timeout    = fs.Duration("timeout", 0, "per-job wall budget (0 = daemon default)")
		maxBlocks  = fs.Uint64("max-blocks", 0, "watchdog block budget")
		maxInstrs  = fs.Uint64("max-instrs", 0, "watchdog instruction budget")
		supervised = fs.Bool("supervised", false, "replay-verify crashes; degrade host panics to the IR oracle")
		retries    = fs.Int("retries", 0, "transient-failure retries (0 = daemon default, -1 disables)")
		wait       = fs.Bool("wait", false, "poll until terminal; exit with the taxonomy exit code")
		interval   = fs.Duration("poll", 100*time.Millisecond, "poll interval for -wait")
		ls         = fs.Int("s", 0, "lulesh: mesh size")
		li         = fs.Int("i", 0, "lulesh: iterations")
		ltel       = fs.Int("tel", 0, "lulesh: tasks per element loop")
		ltnl       = fs.Int("tnl", 0, "lulesh: tasks per node loop")
		lracy      = fs.Bool("racy", false, "lulesh: drop a task dependence")
	)
	fs.Parse(args)

	req := map[string]any{}
	if *token != "" {
		req["token"] = *token
	} else {
		sp := serve.JobSpec{
			Prog: *prog, Tool: *tool, Seed: *seed, Seeds: *seeds,
			Threads: *threads, Engine: *engine, Delivery: *delivery,
			Extend: *extend, Inject: *inject, Lenient: *lenient,
			MaxBlocks: *maxBlocks, MaxInstrs: *maxInstrs,
			TimeoutMS:  int64(*timeout / time.Millisecond),
			Supervised: *supervised, MaxRetries: *retries,
			LSize: *ls, LIters: *li, LTasksEl: *ltel, LTasksNd: *ltnl, LRacy: *lracy,
		}
		if *inject != "" {
			sp.InjectSeed = *injectSeed
		}
		b, err := json.Marshal(sp)
		if err != nil {
			fmt.Fprintln(w, "submit:", err)
			return 2
		}
		if err := json.Unmarshal(b, &req); err != nil {
			fmt.Fprintln(w, "submit:", err)
			return 2
		}
	}
	body, _ := json.Marshal(req)
	resp, err := http.Post(*addr+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		fmt.Fprintln(w, "submit:", err)
		return 2
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		msg, _ := io.ReadAll(resp.Body)
		fmt.Fprintf(w, "submit: %s: %s\n", resp.Status, bytes.TrimSpace(msg))
		return 2
	}
	var sub struct {
		Jobs  []serve.JobView `json:"jobs"`
		Group string          `json:"group"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
		fmt.Fprintln(w, "submit:", err)
		return 2
	}
	for _, j := range sub.Jobs {
		fmt.Fprintf(w, "%s %s %s\n", j.ID, j.Status, j.Token)
	}
	if sub.Group != "" {
		fmt.Fprintf(w, "group %s\n", sub.Group)
	}
	if !*wait {
		return 0
	}

	// Poll every job to its terminal state; the worst exit code wins, so a
	// sweep with one crashed seed exits like the crashed run.
	code := 0
	for _, j := range sub.Jobs {
		var v serve.JobView
		for {
			if err := getJSON(*addr+"/jobs/"+j.ID, &v); err != nil {
				fmt.Fprintln(w, "submit:", err)
				return 2
			}
			if v.Status.Terminal() {
				break
			}
			time.Sleep(*interval)
		}
		if v.Result != nil {
			if v.Result.Output != "" {
				fmt.Fprint(w, v.Result.Output)
			}
			if v.Result.Crash != "" {
				fmt.Fprint(w, v.Result.Crash)
			}
		}
		fmt.Fprintf(w, "%s %s", v.ID, v.Status)
		if v.Result != nil && v.Result.Verdict != store.VerdictOK {
			fmt.Fprintf(w, " verdict=%s replay=%s", v.Result.Verdict, v.Result.ReplayToken)
		}
		fmt.Fprintln(w)
		if c := exitFor(v); c > code {
			code = c
		}
	}
	return code
}

// runStatus implements `taskgrind status [id]`: one job's view, or the
// full job list.
func runStatus(args []string, w io.Writer) int {
	fs := flag.NewFlagSet("status", flag.ExitOnError)
	addr := fs.String("addr", "http://localhost:8080", "daemon base URL")
	status := fs.String("status", "", "filter the list by status")
	group := fs.String("group", "", "filter the list by sweep group")
	fs.Parse(args)
	url := *addr + "/jobs"
	if fs.NArg() > 0 {
		url += "/" + fs.Arg(0)
	} else {
		url += "?status=" + *status + "&group=" + *group
	}
	var raw json.RawMessage
	if err := getJSON(url, &raw); err != nil {
		fmt.Fprintln(w, "status:", err)
		return 2
	}
	var buf bytes.Buffer
	_ = json.Indent(&buf, raw, "", "  ")
	fmt.Fprintln(w, buf.String())
	return 0
}

// runCancel implements `taskgrind cancel <id>`.
func runCancel(args []string, w io.Writer) int {
	fs := flag.NewFlagSet("cancel", flag.ExitOnError)
	addr := fs.String("addr", "http://localhost:8080", "daemon base URL")
	fs.Parse(args)
	if fs.NArg() != 1 {
		fmt.Fprintln(w, "cancel: usage: taskgrind cancel [-addr URL] <job-id>")
		return 2
	}
	req, _ := http.NewRequest(http.MethodDelete, *addr+"/jobs/"+fs.Arg(0), nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		fmt.Fprintln(w, "cancel:", err)
		return 2
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		fmt.Fprintf(w, "cancel: %s: %s\n", resp.Status, bytes.TrimSpace(body))
		return 2
	}
	var v serve.JobView
	if err := json.Unmarshal(body, &v); err != nil {
		fmt.Fprintln(w, "cancel:", err)
		return 2
	}
	fmt.Fprintf(w, "%s %s\n", v.ID, v.Status)
	return 0
}
