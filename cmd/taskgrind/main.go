// Command taskgrind runs a built-in guest program under an analysis tool —
// the equivalent of `valgrind --tool=taskgrind ./a.out` in the paper's
// setup. Programs are selected by name: every DRB/TMB microbenchmark, the
// LULESH proxy, and the paper's Listing 4 example.
//
// Usage:
//
//	taskgrind -prog 027-taskdependmissing-orig -tool taskgrind -threads 4
//	taskgrind -prog lulesh -racy -s 8 -tool taskgrind
//	taskgrind -prog task.c -tool romp
//	taskgrind -list
//
// Subcommands:
//
//	taskgrind explore -prog task.c -seeds 100 -record /tmp/runs
//	taskgrind query agg -store /tmp/runs
//	taskgrind query top -store /tmp/runs -by samples -n 10
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/dbi"
	"repro/internal/drb"
	"repro/internal/faultinject"
	"repro/internal/gasm"
	"repro/internal/gbuild"
	"repro/internal/harness"
	"repro/internal/lulesh"
	"repro/internal/obs"
	"repro/internal/obs/store"
	"repro/internal/progs"
	"repro/internal/snapshot"
	"repro/internal/tools/toolreg"
	"repro/internal/trace"
	"repro/internal/tstore"
	"repro/internal/vm"
)

func main() {
	// Subcommand dispatch: `taskgrind query ...` and `taskgrind explore ...`
	// operate on/produce run stores; everything else is the single-run flag
	// interface.
	if len(os.Args) > 1 {
		switch os.Args[1] {
		case "query":
			runQuery(os.Args[2:], os.Stdout)
			return
		case "explore":
			runExplore(os.Args[2:], os.Stdout)
			return
		case "submit":
			os.Exit(runSubmit(os.Args[2:], os.Stdout))
		case "status":
			os.Exit(runStatus(os.Args[2:], os.Stdout))
		case "cancel":
			os.Exit(runCancel(os.Args[2:], os.Stdout))
		}
	}
	var (
		prog     = flag.String("prog", "task.c", "program to run (-list to enumerate)")
		asmFile  = flag.String("asm", "", "assemble and run a guest .s file instead of -prog")
		tool     = flag.String("tool", "taskgrind", fmt.Sprintf("analysis tool %v", toolreg.Names()))
		engine   = flag.String("engine", "", "execution engine: compiled (micro-ops + block chaining), ir (reference interpreter), \"\" = default")
		delivery = flag.String("delivery", "batched", "tool access delivery: batched (one flush per superblock segment), per-event (one callback per access)")
		extend   = flag.Int("extend", 0, "superblock extension budget in guest instructions (0 = single basic blocks; changes scheduling granularity)")

		tcacheDir      = flag.String("tcache-dir", "", "persistent translation store directory, shared safely by concurrent processes: instrumented+compiled translations are saved per (image,tool,engine,extend,delivery) and reused across runs")
		tcacheMaxMB    = flag.Int64("tcache-max-mb", 0, "translation store byte cap in MiB (0 = unbounded); clock eviction keeps the cache under it")
		tcacheMaxUnits = flag.Int64("tcache-max-units", 0, "translation store unit cap (0 = unbounded); clock eviction keeps the cache under it")
		pretranslate   = flag.Bool("pretranslate", false, "translate statically reachable blocks ahead of execution on spare cores (implies an in-memory translation store)")
		threads  = flag.Int("threads", 4, "OMP_NUM_THREADS")
		seed     = flag.Uint64("seed", 1, "scheduler seed")
		list     = flag.Bool("list", false, "list available programs")
		verbose  = flag.Bool("v", false, "print run statistics")
		dotFile  = flag.String("dot", "", "write the segment graph (Graphviz DOT) to this file (taskgrind tools only)")
		gantt    = flag.Bool("trace", false, "print a task-schedule Gantt chart after the run")
		// Observability outputs.
		metricsFile  = flag.String("metrics", "", "write a metrics snapshot (JSON) to this file")
		recordDir    = flag.String("record", "", "append this run (spans, instants, profile samples, counters, verdict) to a run store directory (query with `taskgrind query`)")
		traceOut     = flag.String("trace-out", "", "write a Chrome trace_event trace to this file (load in chrome://tracing or ui.perfetto.dev)")
		traceBlocks  = flag.Bool("trace-blocks", false, "include per-block dispatch events in -trace-out (very large)")
		profileFile  = flag.String("profile", "", "write a guest-PC profile (per-symbol + flat) to this file")
		profileEvery = flag.Uint64("profile-interval", 1, "sample every Nth block for -profile")
		// Robustness knobs: watchdog budgets, memory model, fault injection.
		maxBlocks  = flag.Uint64("max-blocks", 0, "watchdog: abort after N basic blocks (0 = unlimited)")
		maxInstrs  = flag.Uint64("max-instrs", 0, "watchdog: abort after N guest instructions (0 = unlimited)")
		timeout    = flag.Duration("timeout", 0, "watchdog: abort after this wall-clock time (0 = unlimited)")
		lenientMem = flag.Bool("lenient-mem", false, "disable the strict guest memory model (wild accesses allocate silently)")
		inject     = flag.String("inject", "", "fault injection spec, e.g. \"pool=7,steal=3\" (kinds: heap, pool, steal, sched, panic, spurious, handoff, trylock; storage: tsread, tswrite, tsnospc, tsshort, tsflip, tslock)")
		injectSeed = flag.Uint64("inject-seed", 1, "fault injection seed (phases the -inject firing patterns)")
		// Recovery knobs: replay tokens, checkpointing, panic fallback.
		replayTok    = flag.String("replay", "", "re-run the configuration encoded in a crash report's replay token (tg1:...); overrides the program/tool/seed flags")
		onPanic      = flag.String("on-panic", "report", "host panic reaction: report (contain + render), fallback (rewind and re-execute under the IR oracle)")
		ckptInterval = flag.Int("ckpt-interval", 0, "capture a guest checkpoint every N timeslices (0 = off; -on-panic=fallback defaults to 16)")
		// LULESH knobs.
		s    = flag.Int("s", 8, "lulesh: mesh size")
		tel  = flag.Int("tel", 4, "lulesh: tasks per element loop")
		tnl  = flag.Int("tnl", 4, "lulesh: tasks per node loop")
		iter = flag.Int("i", 2, "lulesh: iterations")
		racy = flag.Bool("racy", false, "lulesh: drop a task dependence")
	)
	flag.Parse()

	if *list {
		fmt.Println("task.c   (the paper's Listing 4 example)")
		fmt.Println("task.c-critical (Listing 4 with the task bodies in a critical section)")
		fmt.Println("lulesh   (the proxy application; -s -tel -tnl -i -racy)")
		fmt.Println("wildstore (fault-model demo: a task stores through a wild pointer)")
		for _, b := range drb.All() {
			fmt.Println(b.Name)
		}
		for _, b := range drb.LockSuite() {
			fmt.Println(b.Name)
		}
		return
	}

	if *onPanic != "report" && *onPanic != "fallback" {
		fatal(fmt.Errorf("unknown -on-panic %q (report, fallback)", *onPanic))
	}
	// A replay token is the complete run configuration; decoding it turns
	// this invocation into a byte-for-byte re-run of the crashed one.
	sliceLen := 0
	if *replayTok != "" {
		cfg, perr := snapshot.ParseToken(*replayTok)
		if perr != nil {
			fatal(perr)
		}
		if cfg.Prog != "" {
			*prog = cfg.Prog
		}
		if cfg.Tool != "" {
			*tool = cfg.Tool
		}
		if cfg.Seed != 0 {
			*seed = cfg.Seed
		}
		if cfg.Threads != 0 {
			*threads = cfg.Threads
		}
		if cfg.Delivery != "" {
			*delivery = cfg.Delivery
		}
		*engine, *extend = cfg.Engine, cfg.Extend
		*inject, *injectSeed = cfg.Inject, cfg.InjectSeed
		*lenientMem = cfg.Lenient
		sliceLen = cfg.Slice
		if cfg.Prog == "lulesh" {
			*s, *iter, *tel, *tnl, *racy = cfg.LSize, cfg.LIters, cfg.LTasksEl, cfg.LTasksNd, cfg.LRacy
		}
		*asmFile = ""
	}

	var b *gbuild.Builder
	var err error
	if *asmFile != "" {
		src, rerr := os.ReadFile(*asmFile)
		if rerr != nil {
			fatal(rerr)
		}
		b, err = gasm.Assemble(string(src))
	} else {
		b, err = buildProgram(*prog, lulesh.Params{S: *s, TEL: *tel, TNL: *tnl, Iters: *iter, Racy: *racy})
	}
	if err != nil {
		fatal(err)
	}
	if _, _, terr := toolreg.Make(*tool); terr != nil {
		fatal(terr)
	}
	deliv, ok := dbi.ParseDelivery(*delivery)
	if !ok {
		fatal(fmt.Errorf("unknown -delivery %q (batched, per-event)", *delivery))
	}
	if _, perr := faultinject.ParseSpec(*inject, *injectSeed); perr != nil {
		fatal(perr)
	}
	// Every run carries its replay token: the configuration is the recipe,
	// and the run is a pure function of it. Crash reports print the token so
	// `taskgrind -replay <token>` reproduces them byte for byte. Assembled
	// sources have no program name to encode, so -asm runs carry none.
	var token string
	if *asmFile == "" {
		cfg := snapshot.Config{
			Prog: *prog, Tool: *tool, Seed: *seed, Threads: *threads, Slice: sliceLen,
			Engine: *engine, Delivery: *delivery, Extend: *extend,
			Inject: *inject, Lenient: *lenientMem,
		}
		if *inject != "" {
			cfg.InjectSeed = *injectSeed
		}
		if *prog == "lulesh" {
			cfg.LSize, cfg.LIters, cfg.LTasksEl, cfg.LTasksNd, cfg.LRacy = *s, *iter, *tel, *tnl, *racy
		}
		token = cfg.Token()
	}
	im, err := b.Link()
	if err != nil {
		fatal(err)
	}
	symOf := func(pc uint64) string {
		if sym := im.SymbolFor(pc); sym != nil {
			return sym.Name
		}
		return ""
	}
	var storeW *store.Writer
	if *recordDir != "" {
		storeW, err = store.Create(*recordDir)
		if err != nil {
			fatal(err)
		}
	}
	var tcache *tstore.Cache
	if *tcacheDir != "" || *pretranslate {
		opts := tstore.Options{
			Dir:      *tcacheDir,
			MaxBytes: *tcacheMaxMB << 20,
			MaxUnits: *tcacheMaxUnits,
		}
		// Storage faults get their own injector instance: the run injector
		// is rebuilt per supervision attempt, while disk I/O (pretranslate
		// workers, merges, the final save) spans attempts. Same seed, same
		// deterministic streams — the storage kinds just never alias an
		// attempt's guest-visible draws.
		if *inject != "" {
			sin, _ := faultinject.ParseSpec(*inject, *injectSeed)
			opts.FS = &tstore.FaultFS{In: sin}
		}
		tcache = tstore.NewCacheOpts(opts)
	}
	// makeSetup assembles one attempt's configuration. Under
	// -on-panic=fallback the supervisor may build several attempts (record,
	// replay, IR fallback); tool, injector and observability sinks are all
	// stateful, so each attempt gets fresh ones and the captured variables
	// track the latest — the attempt whose results survive.
	var (
		tl     dbi.Tool
		count  func() int
		rec    *trace.Recorder
		hooks  *obs.Hooks
		reg    *obs.Registry
		tracer *obs.Tracer
		prof   *obs.Profiler
		traceF *os.File
		inj    *faultinject.Injector
		outBuf *bytes.Buffer
		srw    *store.RunWriter
	)
	makeSetup := func() harness.Setup {
		tl, count, err = toolreg.Make(*tool)
		if err != nil {
			fatal(err)
		}
		rec = nil
		if *gantt {
			rec = trace.New()
			if tl != nil {
				tl = trace.Tee{A: tl, B: rec}
			} else {
				tl = rec
			}
		}
		// Assemble the observability hooks. Nil hooks keep every
		// instrumented hot path on its one-pointer-compare fast path.
		hooks, reg, tracer, prof = nil, nil, nil, nil
		if *verbose || *metricsFile != "" || *traceOut != "" || *profileFile != "" || storeW != nil {
			hooks = &obs.Hooks{}
			if *verbose || *metricsFile != "" || storeW != nil {
				reg = obs.NewRegistry()
				hooks.Metrics = reg
			}
			var sinks []obs.Sink
			if *traceOut != "" {
				f, cerr := os.Create(*traceOut)
				if cerr != nil {
					fatal(cerr)
				}
				traceF = f
				sinks = append(sinks, obs.NewChromeSink(f))
			}
			if storeW != nil {
				// Fresh run writer per attempt; a superseded attempt's
				// writer is abandoned (never appended) below.
				if srw != nil {
					srw.Abort()
				}
				progLabel := *prog
				if *asmFile != "" {
					progLabel = *asmFile
				}
				srw = storeW.Begin(store.RunHeader{
					Prog: progLabel, Tool: *tool, Engine: *engine,
					Delivery: deliv.String(), Seed: *seed, Threads: *threads,
				})
				ssink := store.NewStoreSink(srw)
				ssink.SymFn = symOf
				sinks = append(sinks, ssink)
			}
			if len(sinks) > 0 {
				tracer = obs.NewTracer(sinks...)
				tracer.BlockEvents = *traceBlocks
				hooks.Tracer = tracer
			}
			if *profileFile != "" || storeW != nil {
				prof = obs.NewProfiler(*profileEvery)
				hooks.Prof = prof
			}
		}
		inj, _ = faultinject.ParseSpec(*inject, *injectSeed)
		var w io.Writer = os.Stdout
		if *onPanic == "fallback" {
			// Buffer guest output per attempt so a rewound re-execution
			// does not print the pre-panic prefix twice.
			outBuf = &bytes.Buffer{}
			w = outBuf
		}
		return harness.Setup{
			Image: im, Tool: tl, Seed: *seed, Threads: *threads, Stdout: w, Obs: hooks,
			Slice:       sliceLen,
			Inject:      inj,
			LenientMem:  *lenientMem,
			Engine:      *engine,
			Extend:      *extend,
			Delivery:    deliv,
			CkptEvery:   *ckptInterval,
			ReplayToken: token,
			RunOpts:     vm.RunOpts{MaxBlocks: *maxBlocks, MaxInstrs: *maxInstrs, Timeout: *timeout},
			TStore:      tcache,
			// Pipeline workers instrument with plain tool instances; the
			// -trace Tee adds no IR of its own, so their translations are
			// exactly what the wrapped tool would produce.
			Pretranslate: *pretranslate,
			NewTool: func() dbi.Tool {
				t, _, _ := toolreg.Make(*tool)
				return t
			},
		}
	}
	start := time.Now()
	var res harness.Result
	var inst *harness.Instance
	if *onPanic == "fallback" {
		sup, serr := harness.Supervise(makeSetup, harness.SuperviseOpts{
			OnPanic: harness.OnPanicFallback, CkptEvery: *ckptInterval, Token: token,
		})
		if serr != nil {
			fatal(serr)
		}
		res, inst = sup.Result, sup.Inst
		os.Stdout.Write(outBuf.Bytes())
		if sup.FellBack {
			fmt.Fprintf(os.Stderr, "==taskgrind== host panic contained at slice window [%d,%d]: re-executed under the IR oracle\n",
				sup.Window[0], sup.Window[1])
		}
		if sup.Taxonomy == harness.TaxDivergence {
			fmt.Fprintf(os.Stderr, "==taskgrind== engine divergence in slice window [%d,%d] (journal-verified)\n",
				sup.Window[0], sup.Window[1])
		}
	} else {
		inst, err = harness.New(makeSetup())
		if err != nil {
			fatal(err)
		}
		res = inst.Run()
	}
	if tcache != nil {
		// Let the pipeline drain before persisting, so the saved tier
		// carries everything it translated, then write the warm start for
		// the next run. Runs on every exit path below (none return early
		// before this point).
		if inst.Pretrans != nil {
			inst.Pretrans.Wait()
		}
		if *tcacheDir != "" {
			if serr := tcache.Save(); serr != nil {
				fmt.Fprintf(os.Stderr, "==taskgrind== tcache save: %v\n", serr)
			}
		}
	}
	injector := inj
	tracerClosed := false
	closeTracer := func() {
		if tracer == nil || tracerClosed {
			return
		}
		tracerClosed = true
		if cerr := tracer.Close(); cerr != nil {
			fatal(cerr)
		}
		if traceF != nil {
			traceF.Close()
		}
	}
	// finishRecord completes the run-store block: final counters, profile
	// samples, race rows, verdict and replay token. Called on every exit
	// path so crashes are recorded too.
	finishRecord := func(verdict string, reports int) {
		if srw == nil {
			return
		}
		closeTracer() // settles still-open spans through the store sink
		inst.CaptureMetrics(reg)
		srw.SetCounters(reg.Snapshot().Counters)
		srw.SetWork(res.GuestInstrs, inst.M.BlocksExecuted, uint64(res.Wall))
		srw.SetReplayToken(token)
		t := tl
		if tee, ok := t.(trace.Tee); ok {
			t = tee.A
		}
		if tg, ok := t.(*core.Taskgrind); ok {
			for _, row := range store.RacesFromSet(&tg.Reports) {
				srw.AddRace(row)
			}
		}
		prof.Each(func(pc, n uint64) { srw.Sample(pc, symOf(pc), n) })
		errStr := ""
		if res.Err != nil {
			errStr = res.Err.Error()
		}
		srw.SetResult(verdict, reports, errStr)
		if ferr := srw.Finish(); ferr != nil {
			fatal(ferr)
		}
		if ferr := storeW.Close(); ferr != nil {
			fatal(ferr)
		}
	}
	if res.Crash != nil {
		// A contained failure: render the Valgrind-style report, symbolized
		// through the image, and exit with the failure taxonomy's documented
		// code (fault=3, panic=4, timeout=5, deadlock=6, divergence=7,
		// canceled=8; see README).
		finishRecord(harness.Classify(res.Err), 0)
		fmt.Fprint(os.Stderr, res.Crash.Render(inst.M.Image))
		if injector.Enabled() {
			fmt.Fprintf(os.Stderr, "==taskgrind== fault injection: %s\n", injector.Summary())
		}
		os.Exit(harness.ExitCodeFor(harness.Classify(res.Err)))
	}
	if res.Err != nil {
		finishRecord(harness.Classify(res.Err), 0)
		fatal(res.Err)
	}
	finishRecord(store.VerdictOK, count())
	closeTracer()
	if reg != nil {
		// One snapshot feeds both the -v text dump and the -metrics JSON
		// file, so the two views cannot disagree. Wall time stays out of
		// the registry: the snapshot is deterministic for a given seed.
		inst.CaptureMetrics(reg)
		reg.Gauge("run_exit_code").Set(float64(res.ExitCode))
		snap := reg.Snapshot()
		if *verbose {
			fmt.Printf("== exit=%d wall=%v ==\n",
				res.ExitCode, time.Since(start).Round(time.Microsecond))
			if werr := snap.WriteText(os.Stdout); werr != nil {
				fatal(werr)
			}
		}
		if *metricsFile != "" {
			mf, cerr := os.Create(*metricsFile)
			if cerr != nil {
				fatal(cerr)
			}
			if werr := snap.WriteJSON(mf); werr != nil {
				fatal(werr)
			}
			mf.Close()
		}
	}
	if prof != nil && *profileFile != "" {
		pf, cerr := os.Create(*profileFile)
		if cerr != nil {
			fatal(cerr)
		}
		if werr := prof.Report(pf, inst.M.Image, 25); werr != nil {
			fatal(werr)
		}
		pf.Close()
	}
	if rec != nil {
		fmt.Println("== task schedule (block time) ==")
		if err := rec.Gantt(os.Stdout, 72); err != nil {
			fatal(err)
		}
	}
	// Render tool reports.
	if tee, ok := tl.(trace.Tee); ok {
		tl = tee.A
	}
	if tt, ok := tl.(*core.Taskgrind); ok && *dotFile != "" {
		df, derr := os.Create(*dotFile)
		if derr != nil {
			fatal(derr)
		}
		if derr := tt.DumpDOT(df); derr != nil {
			fatal(derr)
		}
		df.Close()
		fmt.Fprintf(os.Stderr, "segment graph written to %s\n", *dotFile)
	}
	if text, ok := toolreg.Render(tl); ok {
		fmt.Print(text)
	} else {
		fmt.Printf("== %d report(s)\n", count())
	}
	if count() > 0 {
		os.Exit(1)
	}
}

// buildProgram, listing4 and wildstore delegate to the shared program
// registry (internal/progs), which the daemon's job specs resolve through
// as well — one namespace for CLI flags, replay tokens and HTTP jobs.
func buildProgram(name string, lp lulesh.Params) (*gbuild.Builder, error) {
	return progs.Build(name, lp)
}

// listing4 is the paper's erroneous example program (Listing 4).
func listing4() *gbuild.Builder { return progs.Listing4() }

// wildstore is the fault-model demo: a task dereferences an uninitialized
// "pointer" and stores into unmapped memory, which the strict memory model
// turns into a symbolized CrashReport (exit code 3) instead of silent page
// allocation.
func wildstore() *gbuild.Builder { return progs.Wildstore() }

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "taskgrind:", err)
	os.Exit(2)
}
