package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/explore"
	"repro/internal/gbuild"
	"repro/internal/lulesh"
	"repro/internal/obs/store"
)

var update = flag.Bool("update", false, "rewrite golden files")

// checkGolden compares got against testdata/<name>.golden, rewriting under
// -update.
func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name+".golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if got != string(want) {
		t.Errorf("%s differs from golden:\n--- got ---\n%s--- want ---\n%s", name, got, want)
	}
}

// TestQueryGolden is an acceptance criterion: a recorded run's query output
// is byte-stable for a given (program, seed, engine) — for both engines.
func TestQueryGolden(t *testing.T) {
	bin := buildCLI(t)
	for _, engine := range []string{"ir", "compiled"} {
		t.Run(engine, func(t *testing.T) {
			dir := filepath.Join(t.TempDir(), "runs")
			out, code := runCLI(t, bin, "-prog", "task.c", "-tool", "taskgrind",
				"-engine", engine, "-seed", "1", "-record", dir)
			if code != 1 { // task.c has one deliberate race
				t.Fatalf("record run exit %d, want 1\n%s", code, out)
			}
			top, code := runCLI(t, bin, "query", "top", "-store", dir, "-by", "span")
			if code != 0 {
				t.Fatalf("query top exit %d\n%s", code, top)
			}
			checkGolden(t, "query_top_"+engine, top)

			races, code := runCLI(t, bin, "query", "races", "-store", dir)
			if code != 0 {
				t.Fatalf("query races exit %d\n%s", code, races)
			}
			checkGolden(t, "query_races_"+engine, races)

			spans, code := runCLI(t, bin, "query", "spans", "-store", dir, "-kind", "task")
			if code != 0 {
				t.Fatalf("query spans exit %d\n%s", code, spans)
			}
			checkGolden(t, "query_spans_"+engine, spans)
		})
	}
}

// TestQueryCLISmoke exercises the remaining verbs and flags end-to-end.
func TestQueryCLISmoke(t *testing.T) {
	bin := buildCLI(t)
	dir := filepath.Join(t.TempDir(), "runs")
	if out, code := runCLI(t, bin, "-prog", "task.c", "-record", dir); code != 1 {
		t.Fatalf("record exit %d\n%s", code, out)
	}
	agg, code := runCLI(t, bin, "query", "agg", "-store", dir)
	if code != 0 {
		t.Fatalf("query agg exit %d\n%s", code, agg)
	}
	for _, want := range []string{"runs: 1", "verdicts: ok=1", "taskgrind: 1 report(s) across 1 schedules (stable)"} {
		if !strings.Contains(agg, want) {
			t.Errorf("query agg missing %q:\n%s", want, agg)
		}
	}
	ins, code := runCLI(t, bin, "query", "instants", "-store", dir, "-kind", "omp", "-sym", "steal")
	if code != 0 {
		t.Fatalf("query instants exit %d\n%s", code, ins)
	}
	gantt, code := runCLI(t, bin, "query", "gantt", "-store", dir, "-run", "1", "-width", "60")
	if code != 0 || !strings.Contains(gantt, "thr 0") {
		t.Fatalf("query gantt exit %d\n%s", code, gantt)
	}
	// Pruned and unpruned dumps agree.
	full, code := runCLI(t, bin, "query", "spans", "-store", dir, "-kind", "task", "-no-prune")
	if code != 0 {
		t.Fatal(full)
	}
	pruned, _ := runCLI(t, bin, "query", "spans", "-store", dir, "-kind", "task")
	if full != pruned {
		t.Error("-no-prune changed query results")
	}
}

// TestExploreRecordAggBitIdentical is the cross-seed acceptance criterion: a
// 100-seed sweep recorded into a single store, re-aggregated via the reader,
// reproduces the in-process outcome bit-identically — verdict matrix,
// taxonomy and summary line.
func TestExploreRecordAggBitIdentical(t *testing.T) {
	dir := t.TempDir()
	w, err := store.Create(dir)
	if err != nil {
		t.Fatal(err)
	}
	lp := lulesh.Params{S: 4, TEL: 2, TNL: 2, Iters: 1}
	mk := func(prog string) func() *gbuild.Builder {
		return func() *gbuild.Builder {
			b, err := buildProgram(prog, lp)
			if err != nil {
				t.Error(err)
			}
			return b
		}
	}
	tokenFor := func(prog string) func(int) string {
		return func(seed int) string { return fmt.Sprintf("tg1:%s-%d", prog, seed) }
	}

	// Sweep 1: 100 clean seeds of the Listing-4 microbenchmark.
	okOut, err := explore.RunOpts(mk("task.c"), "taskgrind", 4, 100, explore.Opts{
		Workers: 8, Prog: "task.c", Record: w, TokenFor: tokenFor("task.c"),
	})
	if err != nil {
		t.Fatal(err)
	}
	// Sweep 2: a crashing guest — every seed quarantined, still recorded.
	badOut, err := explore.RunOpts(mk("wildstore"), "taskgrind", 2, 6, explore.Opts{
		Workers: 4, Prog: "wildstore", Record: w, TokenFor: tokenFor("wildstore"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	_, _, runs := w.Stats()
	if runs != 106 {
		t.Fatalf("recorded runs = %d, want 106", runs)
	}

	r, err := store.OpenReader(dir)
	if err != nil {
		t.Fatal(err)
	}
	for prog, want := range map[string]explore.Outcome{"task.c": okOut, "wildstore": badOut} {
		headers, err := r.Runs(store.Q{Prog: prog})
		if err != nil {
			t.Fatal(err)
		}
		got := explore.Rebuild("taskgrind", headers)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%s: rebuilt outcome differs\n got: %+v\nwant: %+v", prog, got, want)
		}
		if got.String() != want.String() {
			t.Errorf("%s: summary line differs\n got: %s\nwant: %s", prog, got.String(), want.String())
		}
	}

	// Quarantined crashes carry their replay tokens and taxonomy.
	bad, err := r.Runs(store.Q{Prog: "wildstore"})
	if err != nil {
		t.Fatal(err)
	}
	if len(bad) != 6 {
		t.Fatalf("wildstore runs = %d, want 6", len(bad))
	}
	for _, h := range bad {
		if h.Verdict == store.VerdictOK {
			t.Fatalf("wildstore seed %d recorded as ok", h.Seed)
		}
		if h.ReplayToken != fmt.Sprintf("tg1:wildstore-%d", h.Seed) {
			t.Fatalf("seed %d replay token = %q", h.Seed, h.ReplayToken)
		}
		if h.Err == "" {
			t.Fatalf("seed %d quarantined without an error", h.Seed)
		}
	}

	// Work stats: every clean run did deterministic guest work.
	okRuns, err := r.Runs(store.Q{Prog: "task.c", Verdict: store.VerdictOK})
	if err != nil {
		t.Fatal(err)
	}
	agg := store.Aggregate(okRuns)
	if agg.Runs != 100 || agg.InstrsMin == 0 {
		t.Fatalf("aggregate over clean sweep: %+v", agg)
	}
}
