package main

// End-to-end daemon coverage: build both binaries, run taskgrindd on a
// loopback port, and drive it through the `taskgrind submit/status/cancel`
// client verbs — including the exit-code parity between a local run and a
// `submit -wait` of the same configuration.

import (
	"fmt"
	"net"
	"net/http"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// TestExitCodeTaxonomy pins the documented exit-code table: each failure
// taxonomy gets its own code (fault=3, panic=4, timeout=5), distinct from
// the clean/reports/usage codes 0/1/2.
func TestExitCodeTaxonomy(t *testing.T) {
	bin := buildCLI(t)
	cases := []struct {
		name string
		args []string
		want int
	}{
		{"reports", []string{"-prog", "task.c", "-seed", "2"}, 1},
		{"usage", []string{"-prog", "nonesuch"}, 2},
		{"fault", []string{"-prog", "wildstore"}, 3},
		{"panic", []string{"-prog", "task.c", "-seed", "2", "-inject", "panic=40", "-inject-seed", "7"}, 4},
		{"timeout", []string{"-prog", "task.c", "-max-blocks", "5"}, 5},
	}
	for _, tc := range cases {
		out, code := runCLI(t, bin, tc.args...)
		if code != tc.want {
			t.Errorf("%s: exit %d, want %d\n%s", tc.name, code, tc.want, out)
		}
	}
}

// buildDaemon compiles taskgrindd into a temp dir.
func buildDaemon(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "taskgrindd")
	out, err := exec.Command("go", "build", "-o", bin, "../taskgrindd").CombinedOutput()
	if err != nil {
		t.Fatalf("go build taskgrindd: %v\n%s", err, out)
	}
	return bin
}

// startDaemon launches taskgrindd on a free loopback port and waits for
// /healthz.
func startDaemon(t *testing.T, bin string, extra ...string) (*exec.Cmd, string) {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	cmd := exec.Command(bin, append([]string{"-addr", addr}, extra...)...)
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if cmd.Process != nil {
			cmd.Process.Kill()
			cmd.Wait()
		}
	})
	base := "http://" + addr
	deadline := time.Now().Add(15 * time.Second)
	for {
		resp, err := http.Get(base + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return cmd, base
			}
		}
		if time.Now().After(deadline) {
			t.Fatal("taskgrindd never became healthy")
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestDaemonSubmitWaitParity: `submit -wait` exits with the same taxonomy
// code a local run of the configuration uses, and the client verbs
// round-trip job state.
func TestDaemonSubmitWaitParity(t *testing.T) {
	cli := buildCLI(t)
	daemon := buildDaemon(t)
	_, base := startDaemon(t, daemon)

	// A clean-with-reports run: exit 1, race report rendered.
	out, code := runCLI(t, cli, "submit", "-addr", base, "-prog", "task.c", "-seed", "2", "-wait")
	if code != 1 {
		t.Fatalf("submit -wait exit %d, want 1\n%s", code, out)
	}
	if !strings.Contains(out, "race") && !strings.Contains(out, "report") {
		t.Fatalf("no rendered report in submit -wait output:\n%s", out)
	}

	// A guest fault: exit 3, crash report + replay token surfaced.
	out, code = runCLI(t, cli, "submit", "-addr", base, "-prog", "wildstore", "-wait")
	if code != 3 {
		t.Fatalf("wildstore submit -wait exit %d, want 3\n%s", code, out)
	}
	if !strings.Contains(out, "tg1:") {
		t.Fatalf("no replay token in failed job output:\n%s", out)
	}

	// status lists both jobs.
	out, code = runCLI(t, cli, "status", "-addr", base)
	if code != 0 || !strings.Contains(out, "j000001") || !strings.Contains(out, "j000002") {
		t.Fatalf("status exit %d:\n%s", code, out)
	}

	// cancel of a terminal job is a no-op success.
	out, code = runCLI(t, cli, "cancel", "-addr", base, "j000001")
	if code != 0 {
		t.Fatalf("cancel exit %d:\n%s", code, out)
	}
}

// TestDaemonDrainOnSignal: SIGTERM drains gracefully — in-flight work
// finishes, queued work persists to -state, and a successor daemon resumes
// it.
func TestDaemonDrainOnSignal(t *testing.T) {
	cli := buildCLI(t)
	daemon := buildDaemon(t)
	state := filepath.Join(t.TempDir(), "queue.json")
	cmd, base := startDaemon(t, daemon, "-workers", "1", "-state", state, "-drain-timeout", "2s")

	// One long job to occupy the worker, a few queued behind it.
	out, code := runCLI(t, cli, "submit", "-addr", base, "-prog", "lulesh", "-i", "300", "-timeout", "60s")
	if code != 0 {
		t.Fatalf("long submit exit %d:\n%s", code, out)
	}
	for i := 0; i < 3; i++ {
		if out, code := runCLI(t, cli, "submit", "-addr", base, "-prog", "task.c",
			"-seed", fmt.Sprint(i+1)); code != 0 {
			t.Fatalf("queued submit exit %d:\n%s", code, out)
		}
	}
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("daemon did not drain within 60s of SIGTERM")
	}

	// The successor resumes the parked jobs and runs them to completion.
	_, base2 := startDaemon(t, daemon, "-workers", "2", "-state", state)
	deadline := time.Now().Add(60 * time.Second)
	for {
		out, _ := runCLI(t, cli, "status", "-addr", base2)
		if strings.Count(out, `"status": "done"`) >= 3 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("resumed jobs never completed:\n%s", out)
		}
		time.Sleep(50 * time.Millisecond)
	}
}
