package main

// The `taskgrind query` subcommand: cross-run analytics over a recorded run
// store, and the `taskgrind explore` subcommand that produces one. The
// store is append-only and deterministic (block-clock timestamps), so query
// output for a given (program, seed) recording is byte-stable — the
// property the golden tests pin.

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"repro/internal/explore"
	"repro/internal/gbuild"
	"repro/internal/harness"
	"repro/internal/lulesh"
	"repro/internal/obs/store"
	"repro/internal/snapshot"
	"repro/internal/tools/toolreg"
	"repro/internal/trace"
)

// queryUsage enumerates the verbs.
const queryUsage = `usage: taskgrind query <verb> -store <dir> [flags]

verbs:
  top       top-N symbols by weighted profile samples or span time
  spans     filtered span dump (JSONL)
  instants  filtered instant dump (JSONL)
  races     race rows joined with the racing threads' task spans (JSONL)
  agg       cross-seed aggregation: verdict matrix, failure taxonomy, work stats
  gantt     render one recorded run's task schedule
`

// runQuery dispatches `taskgrind query <verb> [flags]`.
func runQuery(args []string, stdout io.Writer) {
	if len(args) == 0 {
		fmt.Fprint(os.Stderr, queryUsage)
		os.Exit(2)
	}
	verb, args := args[0], args[1:]
	fs := flag.NewFlagSet("query "+verb, flag.ExitOnError)
	var (
		storeDir = fs.String("store", "", "run store directory (required)")
		runID    = fs.Uint64("run", 0, "filter: run ID (0 = all)")
		tool     = fs.String("tool", "", "filter: tool name")
		prog     = fs.String("prog", "", "filter: program name")
		verdict  = fs.String("verdict", "", "filter: verdict (ok, fault, panic, timeout, deadlock, divergence, error)")
		seed     = fs.Int64("seed", -1, "filter: scheduler seed (-1 = all)")
		thread   = fs.Int("thread", -1, "filter: guest thread (-1 = all)")
		sym      = fs.String("sym", "", "filter: symbol / span label / instant name")
		kind     = fs.String("kind", "", "filter: span/instant kind (task, implicit, parallel, translation, sched, omp, inject, diag)")
		minTS    = fs.Uint64("min-ts", 0, "filter: minimum block-clock time")
		maxTS    = fs.Uint64("max-ts", 0, "filter: maximum block-clock time (0 = unbounded)")
		noPrune  = fs.Bool("no-prune", false, "disable footer-index block pruning (full scan)")
		by       = fs.String("by", "samples", "top: rank by \"samples\" (profile weight) or \"span\" (span time)")
		topN     = fs.Int("n", 10, "top: row bound (0 = all)")
		width    = fs.Int("width", 72, "gantt: chart width in columns")
	)
	fs.Parse(args)
	if *storeDir == "" {
		fatal(fmt.Errorf("query: -store is required"))
	}
	r, err := store.OpenReader(*storeDir)
	if err != nil {
		fatal(err)
	}
	r.NoPrune = *noPrune
	q := store.Q{
		Run: *runID, Tool: *tool, Prog: *prog, Verdict: *verdict,
		Sym: *sym, Kind: *kind, MinTS: *minTS, MaxTS: *maxTS,
	}
	if *seed >= 0 {
		s := uint64(*seed)
		q.Seed = &s
	}
	if *thread >= 0 {
		t := *thread
		q.Thread = &t
	}

	switch verb {
	case "top":
		entries, err := store.TopSymbols(r, q, *by, *topN)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(stdout, "%12s %12s %6s  %s\n", "WEIGHT", "SPAN_TIME", "SPANS", "SYMBOL")
		for _, e := range entries {
			fmt.Fprintf(stdout, "%12d %12d %6d  %s\n", e.Weight, e.SpanTime, e.Spans, e.Sym)
		}
	case "spans":
		spans, err := r.Spans(q)
		if err != nil {
			fatal(err)
		}
		writeJSONL(stdout, len(spans), func(i int) any { return spans[i] })
	case "instants":
		ins, err := r.Instants(q)
		if err != nil {
			fatal(err)
		}
		writeJSONL(stdout, len(ins), func(i int) any { return ins[i] })
	case "races":
		joins, err := store.JoinRaces(r, q)
		if err != nil {
			fatal(err)
		}
		writeJSONL(stdout, len(joins), func(i int) any { return joins[i] })
	case "agg":
		headers, err := r.Runs(q)
		if err != nil {
			fatal(err)
		}
		printAgg(stdout, headers)
	case "gantt":
		if *runID == 0 {
			fatal(fmt.Errorf("query gantt: -run is required"))
		}
		spans, err := r.Spans(q)
		if err != nil {
			fatal(err)
		}
		if err := trace.Gantt(stdout, ganttSpans(spans), *width); err != nil {
			fatal(err)
		}
	default:
		fmt.Fprint(os.Stderr, queryUsage)
		os.Exit(2)
	}
}

// writeJSONL streams n records as one JSON object per line.
func writeJSONL(w io.Writer, n int, get func(i int) any) {
	enc := json.NewEncoder(w)
	for i := 0; i < n; i++ {
		if err := enc.Encode(get(i)); err != nil {
			fatal(err)
		}
	}
}

// ganttSpans maps recorded task-like spans onto the trace renderer's span
// type, synthesizing stable glyph IDs from the span labels.
func ganttSpans(spans []store.Span) []trace.Span {
	ids := map[string]uint64{}
	var out []trace.Span
	for _, s := range spans {
		if s.Kind != "task" && s.Kind != "implicit" && s.Kind != "parallel" {
			continue
		}
		key := s.Name
		if key == "" {
			key = s.Kind
		}
		id, ok := ids[key]
		if !ok {
			id = uint64(len(ids) + 1)
			ids[key] = id
		}
		label := s.Sym
		if label == "" && s.Kind != "implicit" {
			label = key
		}
		if s.Kind == "implicit" {
			label = "implicit"
		}
		out = append(out, trace.Span{
			Thread: s.Thread, TaskID: id, Label: label,
			Start: s.Start, End: s.End,
		})
	}
	return out
}

// printAgg renders the cross-seed aggregation: the reconstructed sweep
// outcome (bit-identical to the in-process summary), the verdict matrix,
// the failure taxonomy and the work statistics.
func printAgg(w io.Writer, headers []store.RunHeader) {
	if len(headers) == 0 {
		fmt.Fprintln(w, "(no runs matched)")
		return
	}
	stats := store.Aggregate(headers)
	tool := headers[0].Tool
	out := explore.Rebuild(tool, headers)
	fmt.Fprintf(w, "runs: %d\n", stats.Runs)
	fmt.Fprintln(w, out.String())
	fmt.Fprintf(w, "verdicts: %s\n", countMap(stats.Verdicts))
	tax := map[string]int{}
	for v, n := range stats.Verdicts {
		if v != store.VerdictOK {
			tax[v] = n
		}
	}
	if len(tax) > 0 {
		fmt.Fprintf(w, "taxonomy: %s\n", countMap(tax))
	}
	if len(stats.Reports) > 0 {
		keys := make([]int, 0, len(stats.Reports))
		for k := range stats.Reports {
			keys = append(keys, k)
		}
		sort.Ints(keys)
		parts := make([]string, 0, len(keys))
		for _, k := range keys {
			parts = append(parts, fmt.Sprintf("%d×%d", k, stats.Reports[k]))
		}
		fmt.Fprintf(w, "reports (count×seeds): %s\n", strings.Join(parts, " "))
	}
	if len(out.Failed) > 0 {
		for _, f := range out.Failures {
			mark := ""
			if f.Reproduced {
				mark = " (reproduced)"
			}
			fmt.Fprintf(w, "quarantined seed %d: %s%s\n", f.Seed, f.Kind, mark)
		}
	}
	fmt.Fprintf(w, "instrs: total=%d min=%d max=%d\n",
		stats.InstrsTotal, stats.InstrsMin, stats.InstrsMax)
	fmt.Fprintf(w, "wall: total=%dns (host time; nondeterministic)\n", stats.WallNanosTotal)
}

// countMap renders a string→count map as sorted "k=v" pairs.
func countMap(m map[string]int) string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, 0, len(keys))
	for _, k := range keys {
		parts = append(parts, fmt.Sprintf("%s=%d", k, m[k]))
	}
	return strings.Join(parts, " ")
}

// runExplore dispatches `taskgrind explore [flags]`: a multi-seed sweep,
// optionally recorded into a run store for `taskgrind query`.
func runExplore(args []string, stdout io.Writer) {
	fs := flag.NewFlagSet("explore", flag.ExitOnError)
	var (
		prog       = fs.String("prog", "task.c", "program to sweep (-list on the main command)")
		tool       = fs.String("tool", "taskgrind", fmt.Sprintf("analysis tool %v", toolreg.Names()))
		engine     = fs.String("engine", "", "execution engine: compiled, ir, \"\" = default")
		threads    = fs.Int("threads", 4, "OMP_NUM_THREADS")
		seeds      = fs.Int("seeds", 16, "number of scheduler seeds (1..N)")
		workers    = fs.Int("workers", 4, "concurrent machines")
		recordDir  = fs.String("record", "", "record every run into this store directory")
		supervised = fs.Bool("supervised", false, "drive every seed through the crash-recovery supervisor (verified quarantine)")
		inject     = fs.String("inject", "", "fault injection spec applied to every seed, e.g. \"trylock=3\" (kinds: heap, pool, steal, sched, panic, spurious, handoff, trylock)")
		injectSeed = fs.Uint64("inject-seed", 1, "fault injection seed (phases the -inject firing patterns)")
		s          = fs.Int("s", 8, "lulesh: mesh size")
		tel        = fs.Int("tel", 4, "lulesh: tasks per element loop")
		tnl        = fs.Int("tnl", 4, "lulesh: tasks per node loop")
		iter       = fs.Int("i", 2, "lulesh: iterations")
		racy       = fs.Bool("racy", false, "lulesh: drop a task dependence")
	)
	fs.Parse(args)
	lp := lulesh.Params{S: *s, TEL: *tel, TNL: *tnl, Iters: *iter, Racy: *racy}
	if _, err := buildProgram(*prog, lp); err != nil {
		fatal(err)
	}
	opts := explore.Opts{
		Workers: *workers, Prog: *prog, Engine: *engine,
		Inject: *inject, InjectSeed: *injectSeed,
		TokenFor: func(seed int) string {
			cfg := snapshot.Config{
				Prog: *prog, Tool: *tool, Seed: uint64(seed),
				Threads: *threads, Engine: *engine,
				Inject: *inject, InjectSeed: *injectSeed,
			}
			if *prog == "lulesh" {
				cfg.LSize, cfg.LIters, cfg.LTasksEl, cfg.LTasksNd, cfg.LRacy =
					*s, *iter, *tel, *tnl, *racy
			}
			return cfg.Token()
		},
	}
	if *recordDir != "" {
		w, err := store.Create(*recordDir)
		if err != nil {
			fatal(err)
		}
		defer w.Close()
		opts.Record = w
	}
	mk := func() *gbuild.Builder {
		b, err := buildProgram(*prog, lp)
		if err != nil {
			fatal(err)
		}
		return b
	}
	var out explore.Outcome
	var err error
	if *supervised {
		out, err = explore.RunSupervisedOpts(mk, *tool, *threads, *seeds, opts,
			harness.SuperviseOpts{OnPanic: harness.OnPanicFallback})
	} else {
		out, err = explore.RunOpts(mk, *tool, *threads, *seeds, opts)
	}
	if err != nil {
		fatal(err)
	}
	fmt.Fprintln(stdout, out.String())
	for _, f := range out.Failures {
		mark := ""
		if f.Reproduced {
			mark = " (reproduced)"
		}
		fmt.Fprintf(stdout, "quarantined seed %d: %s%s — %s\n", f.Seed, f.Kind, mark, f.Err)
	}
	if opts.Record != nil {
		flushed, dropped, runs := opts.Record.Stats()
		fmt.Fprintf(stdout, "recorded %d run(s) to %s (batches=%d dropped=%d)\n",
			runs, *recordDir, flushed, dropped)
	}
}
