package main

import (
	"testing"

	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/lulesh"
)

func TestBuildProgramResolvesNames(t *testing.T) {
	lp := lulesh.Params{S: 4, TEL: 2, TNL: 2, Iters: 1}
	for _, name := range []string{"task.c", "lulesh", "027-taskdependmissing-orig", "1001-stack_1"} {
		if _, err := buildProgram(name, lp); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
	if _, err := buildProgram("nonesuch", lp); err == nil {
		t.Error("unknown program accepted")
	}
}

func TestListing4ReproducesThePaperExample(t *testing.T) {
	tg := core.New(core.DefaultOptions())
	res, _, err := harness.BuildAndRun(listing4(), harness.Setup{Tool: tg, Seed: 1, Threads: 4})
	if err != nil || res.Err != nil {
		t.Fatal(err, res.Err)
	}
	if tg.RaceCount != 1 {
		t.Fatalf("races = %d, want 1\n%s", tg.RaceCount, tg.Reports.String())
	}
}
