package main

import (
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/lulesh"
)

func TestBuildProgramResolvesNames(t *testing.T) {
	lp := lulesh.Params{S: 4, TEL: 2, TNL: 2, Iters: 1}
	for _, name := range []string{"task.c", "lulesh", "027-taskdependmissing-orig", "1001-stack_1"} {
		if _, err := buildProgram(name, lp); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
	if _, err := buildProgram("nonesuch", lp); err == nil {
		t.Error("unknown program accepted")
	}
}

func TestListing4ReproducesThePaperExample(t *testing.T) {
	tg := core.New(core.DefaultOptions())
	res, _, err := harness.BuildAndRun(listing4(), harness.Setup{Tool: tg, Seed: 1, Threads: 4})
	if err != nil || res.Err != nil {
		t.Fatal(err, res.Err)
	}
	if tg.RaceCount != 1 {
		t.Fatalf("races = %d, want 1\n%s", tg.RaceCount, tg.Reports.String())
	}
}

// buildCLI compiles the taskgrind binary once per test into a temp dir.
func buildCLI(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "taskgrind")
	out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput()
	if err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

// runCLI runs the binary and returns combined output + exit code.
func runCLI(t *testing.T, bin string, args ...string) (string, int) {
	t.Helper()
	cmd := exec.Command(bin, args...)
	out, err := cmd.CombinedOutput()
	if err != nil {
		var ee *exec.ExitError
		if ok := isExit(err, &ee); !ok {
			t.Fatalf("%v: %v\n%s", args, err, out)
		}
	}
	return string(out), cmd.ProcessState.ExitCode()
}

func isExit(err error, ee **exec.ExitError) bool {
	e, ok := err.(*exec.ExitError)
	if ok {
		*ee = e
	}
	return ok
}

var tokenRE = regexp.MustCompile(`replay: (tg1:[A-Za-z0-9_=-]+)`)

// TestReplayTokenReproducesCrash is the acceptance criterion: a crash
// report's replay token, fed back through -replay, reproduces the crash
// byte for byte.
func TestReplayTokenReproducesCrash(t *testing.T) {
	bin := buildCLI(t)
	orig, code := runCLI(t, bin, "-prog", "wildstore", "-seed", "1", "-threads", "2")
	if code != 3 {
		t.Fatalf("wildstore exit %d, want 3\n%s", code, orig)
	}
	m := tokenRE.FindStringSubmatch(orig)
	if m == nil {
		t.Fatalf("crash report carries no replay token:\n%s", orig)
	}
	replayed, code := runCLI(t, bin, "-replay", m[1])
	if code != 3 {
		t.Fatalf("replay exit %d, want 3\n%s", code, replayed)
	}
	if replayed != orig {
		t.Fatalf("replay is not byte-identical:\n--- original\n%s\n--- replay\n%s", orig, replayed)
	}
}

// TestReplayTokenRoundTripsInjection: an injected crash replays exactly,
// including the injection spec carried in the token.
func TestReplayTokenRoundTripsInjection(t *testing.T) {
	bin := buildCLI(t)
	args := []string{"-prog", "task.c", "-seed", "2", "-inject", "panic=40", "-inject-seed", "7"}
	orig, code := runCLI(t, bin, args...)
	if code != 4 {
		t.Fatalf("injected run exit %d, want 4 (host panic)\n%s", code, orig)
	}
	m := tokenRE.FindStringSubmatch(orig)
	if m == nil {
		t.Fatalf("no replay token:\n%s", orig)
	}
	replayed, code := runCLI(t, bin, "-replay", m[1])
	if code != 4 || replayed != orig {
		t.Fatalf("injected replay differs (exit %d):\n--- original\n%s\n--- replay\n%s", code, orig, replayed)
	}
}

// TestOnPanicFallbackMatchesUninjected is the acceptance criterion: an
// injected engine panic under -on-panic=fallback completes under the IR
// oracle with the same tool report as an uninjected run.
func TestOnPanicFallbackMatchesUninjected(t *testing.T) {
	bin := buildCLI(t)
	base, code := runCLI(t, bin, "-prog", "task.c", "-seed", "2")
	if code != 1 {
		t.Fatalf("baseline exit %d, want 1 (a found race)\n%s", code, base)
	}
	fb := exec.Command(bin, "-prog", "task.c", "-seed", "2",
		"-inject", "panic=40", "-inject-seed", "7", "-on-panic=fallback")
	var stdout, stderr strings.Builder
	fb.Stdout, fb.Stderr = &stdout, &stderr
	_ = fb.Run()
	if fb.ProcessState.ExitCode() != 1 {
		t.Fatalf("fallback exit %d, want 1\nstdout:\n%s\nstderr:\n%s",
			fb.ProcessState.ExitCode(), stdout.String(), stderr.String())
	}
	if !strings.Contains(stderr.String(), "IR oracle") {
		t.Fatalf("no degradation notice on stderr:\n%s", stderr.String())
	}
	// The baseline prints reports on stdout only (exit 1, no crash).
	if stdout.String() != base {
		t.Fatalf("fallback tool report differs from uninjected run:\n--- fallback\n%s\n--- baseline\n%s",
			stdout.String(), base)
	}
}
