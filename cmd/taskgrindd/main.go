// Command taskgrindd is the analysis daemon: a long-running HTTP/JSON
// service that accepts analysis jobs (program + tool + engine/delivery
// config + seed range + budgets), runs them on a bounded worker pool, and
// survives anything a job does — guest faults, host panics, watchdog
// trips and deadlocks are classified, optionally replay-verified, and
// reported as that job's result.
//
//	taskgrindd -addr :8080 -workers 8 -queue 128 -state /tmp/tgd.json
//
//	curl -X POST localhost:8080/jobs -d '{"prog":"task.c","seeds":10}'
//	curl localhost:8080/jobs/j000001
//	curl localhost:8080/metrics
//
// SIGTERM/SIGINT triggers a graceful drain: admission stops (/readyz goes
// 503), in-flight jobs finish up to -drain-timeout, still-queued jobs are
// persisted to -state and resumed by the next daemon.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/obs/store"
	"repro/internal/serve"
	"repro/internal/tstore"
)

func main() {
	var (
		addr         = flag.String("addr", ":8080", "listen address")
		workers      = flag.Int("workers", 4, "concurrent analysis workers")
		queue        = flag.Int("queue", 64, "admission queue depth (submissions beyond it are shed with 429)")
		retries      = flag.Int("retries", 2, "default automatic retries for transient (panic/timeout) failures")
		jobTimeout   = flag.Duration("job-timeout", 30*time.Second, "default per-job wall budget")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "graceful-drain wait for in-flight jobs")
		statePath    = flag.String("state", "", "persist still-queued jobs here at drain; resume them on start")
		recordDir    = flag.String("record", "", "append every job's run to this run-store directory (query with `taskgrind query`)")
		tcacheDir      = flag.String("tcache-dir", "", "persistent translation store directory shared by every job and safely by concurrent daemons; saved periodically and at drain so restarts (and cold peers) start warm")
		tcacheMaxMB    = flag.Int64("tcache-max-mb", 0, "translation store byte cap in MiB (0 = unbounded); clock eviction keeps the cache under it")
		tcacheMaxUnits = flag.Int64("tcache-max-units", 0, "translation store unit cap (0 = unbounded); clock eviction keeps the cache under it")
		seed           = flag.Uint64("seed", 1, "retry backoff jitter seed")
		verbose        = flag.Bool("v", false, "print the metrics snapshot after drain")
	)
	flag.Parse()

	var rec *store.Writer
	if *recordDir != "" {
		w, err := store.Create(*recordDir)
		if err != nil {
			fatal(err)
		}
		rec = w
		defer rec.Close()
	}
	tcache := tstore.NewCacheOpts(tstore.Options{
		Dir:      *tcacheDir,
		MaxBytes: *tcacheMaxMB << 20,
		MaxUnits: *tcacheMaxUnits,
	})
	srv := serve.New(serve.Options{
		Workers: *workers, QueueDepth: *queue, MaxRetries: *retries,
		JobTimeout: *jobTimeout, DrainTimeout: *drainTimeout,
		StatePath: *statePath, Record: rec, Seed: *seed,
		TCache: tcache,
	})
	if err := srv.Start(); err != nil {
		fatal(err)
	}
	// Periodic persist: a fleet peer (or a CLI run) sharing -tcache-dir
	// picks up this daemon's translations mid-flight instead of waiting for
	// drain. Save is incremental (locked append of new frames only) and
	// degrades on any storage fault, so the ticker is safe to run forever.
	saveStop := make(chan struct{})
	if *tcacheDir != "" {
		go func() {
			tick := time.NewTicker(10 * time.Second)
			defer tick.Stop()
			for {
				select {
				case <-tick.C:
					if err := tcache.Save(); err != nil {
						fmt.Fprintln(os.Stderr, "taskgrindd: tcache save:", err)
					}
				case <-saveStop:
					return
				}
			}
		}()
	}

	hs := &http.Server{Addr: *addr, Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGTERM, syscall.SIGINT)
	select {
	case sig := <-sigc:
		fmt.Fprintf(os.Stderr, "taskgrindd: %v: draining\n", sig)
	case err := <-errc:
		fatal(err)
	}

	// Graceful drain: stop admitting, finish in-flight work, persist the
	// queue, then close the listener.
	dctx, cancel := context.WithTimeout(context.Background(), *drainTimeout+5*time.Second)
	defer cancel()
	if err := srv.Drain(dctx); err != nil {
		fmt.Fprintln(os.Stderr, "taskgrindd: drain:", err)
	}
	if err := hs.Shutdown(dctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintln(os.Stderr, "taskgrindd: shutdown:", err)
	}
	close(saveStop)
	if *tcacheDir != "" {
		if err := tcache.Save(); err != nil {
			fmt.Fprintln(os.Stderr, "taskgrindd: tcache save:", err)
		}
	}
	if *verbose {
		if err := srv.MetricsSnapshot().WriteText(os.Stdout); err != nil {
			fatal(err)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "taskgrindd:", err)
	os.Exit(2)
}
