// Command drbench regenerates the paper's Table I: every DRB/TMB
// microbenchmark under TaskSanitizer, Archer, ROMP and Taskgrind, with the
// published cells shown next to any mismatching measurement.
//
// Usage:
//
//	drbench            # full table
//	drbench -seeds 16  # more schedules per (benchmark, tool) cell
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/drb"
)

func main() {
	nseeds := flag.Int("seeds", 8, "schedules per cell (detection = any seed)")
	bench := flag.String("bench", "", "show one benchmark's per-tool verdicts and reports")
	threads := flag.Int("threads", 4, "thread count for -bench")
	flag.Parse()

	if *bench != "" {
		detail(*bench, *threads, *nseeds)
		return
	}

	seeds := make([]uint64, *nseeds)
	for i := range seeds {
		seeds[i] = uint64(i + 1)
	}
	rows, err := drb.GenerateTableI(seeds)
	if err != nil {
		fmt.Fprintln(os.Stderr, "drbench:", err)
		os.Exit(2)
	}
	fmt.Print(drb.FormatTableI(rows))

	per := drb.MatchStats(rows)
	fmt.Println()
	for tool := drb.Tool(0); tool < drb.NumTools; tool++ {
		fmt.Printf("%-14s agreement with paper: %d/%d; false negatives: %d\n",
			tool, per[tool][0], per[tool][1], drb.FalseNegatives(rows, tool))
	}
}

// detail prints one benchmark's verdict under every tool.
func detail(name string, threads, nseeds int) {
	b, ok := drb.ByName(name)
	if !ok {
		fmt.Fprintf(os.Stderr, "drbench: unknown benchmark %q (see drbench with no flags)\n", name)
		os.Exit(2)
	}
	seeds := make([]uint64, nseeds)
	for i := range seeds {
		seeds[i] = uint64(i + 1)
	}
	truth := "no"
	if b.Race {
		truth = "yes"
	}
	fmt.Printf("%s — determinacy race: %s, %d threads, %d schedules\n", b.Name, truth, threads, nseeds)
	for tool := drb.Tool(0); tool < drb.NumTools; tool++ {
		v, err := drb.VerdictOf(b, tool, threads, seeds)
		if err != nil {
			fmt.Fprintln(os.Stderr, "drbench:", err)
			os.Exit(2)
		}
		fmt.Printf("  %-14s %s\n", tool.String(), v)
	}
}
